//! Synthetic page-access pattern generators.
//!
//! §II-B of the paper classifies the stream shapes found in full memory
//! traces of real applications:
//!
//! * **simple streams** — consecutive page accesses with a fixed stride;
//! * **ladder streams** — a repetitive spatial pattern of concentrated
//!   accesses across streams (the *tread*) followed by a larger stable
//!   stride (the *rise*), common in blocked matrix code (HPL);
//! * **ripple streams** — stride-1 streams distorted by out-of-order and
//!   across-stream accesses (NPB-MG);
//! * **interference pages** — accesses that belong to no stream at all.
//!
//! Each generator here produces one such shape deterministically (any
//! randomness comes from a caller-provided seed), and [`Interleaver`]
//! merges several generators to model concurrent threads — the very
//! situation that confuses fault-history-only prefetchers (§II-B ②).

use hopp_types::rng::SplitMix64;
use hopp_types::{AccessKind, PageAccess, Pid, Vpn, LINES_PER_PAGE};

/// A source of page accesses: the interface between workload models and
/// the simulator.
///
/// Implementations must be deterministic for a given construction (seed
/// included) so every experiment is reproducible.
pub trait AccessStream {
    /// Produces the next page touch, or `None` when the stream is done.
    fn next_access(&mut self) -> Option<PageAccess>;

    /// A short human-readable label (used in experiment output).
    fn name(&self) -> &str {
        "stream"
    }
}

impl AccessStream for Box<dyn AccessStream> {
    fn next_access(&mut self) -> Option<PageAccess> {
        (**self).next_access()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Common per-touch knobs shared by the concrete generators.
#[derive(Clone, Copy, Debug)]
struct TouchShape {
    lines: u8,
    think_ns: u32,
    kind: AccessKind,
}

impl Default for TouchShape {
    fn default() -> Self {
        TouchShape {
            lines: LINES_PER_PAGE as u8,
            think_ns: 0,
            kind: AccessKind::Read,
        }
    }
}

impl TouchShape {
    fn touch(&self, pid: Pid, vpn: Vpn) -> PageAccess {
        PageAccess {
            pid,
            vpn,
            kind: self.kind,
            lines: self.lines,
            think_ns: self.think_ns,
        }
    }
}

/// A simple stream: `len` pages starting at `start` with a fixed stride.
///
/// # Example
///
/// ```
/// use hopp_trace::patterns::{SimpleStream, AccessStream};
/// use hopp_types::{Pid, Vpn};
/// let mut s = SimpleStream::new(Pid::new(1), Vpn::new(10), -2, 3);
/// let v: Vec<u64> = std::iter::from_fn(|| s.next_access()).map(|a| a.vpn.raw()).collect();
/// assert_eq!(v, vec![10, 8, 6]);
/// ```
#[derive(Clone, Debug)]
pub struct SimpleStream {
    pid: Pid,
    next: Option<Vpn>,
    stride: i64,
    remaining: u64,
    shape: TouchShape,
}

impl SimpleStream {
    /// Creates a stream of `len` touches from `start` with stride
    /// `stride` (in pages; may be negative).
    pub fn new(pid: Pid, start: Vpn, stride: i64, len: u64) -> Self {
        SimpleStream {
            pid,
            next: Some(start),
            stride,
            remaining: len,
            shape: TouchShape::default(),
        }
    }

    /// Sets the cachelines covered per touch (1..=64).
    ///
    /// # Panics
    ///
    /// Panics if `lines` is 0 or greater than 64.
    pub fn with_lines(mut self, lines: u8) -> Self {
        assert!(lines >= 1 && lines as usize <= LINES_PER_PAGE);
        self.shape.lines = lines;
        self
    }

    /// Sets per-touch compute time.
    pub fn with_think(mut self, think_ns: u32) -> Self {
        self.shape.think_ns = think_ns;
        self
    }

    /// Makes the stream issue writes instead of reads.
    pub fn writes(mut self) -> Self {
        self.shape.kind = AccessKind::Write;
        self
    }
}

impl AccessStream for SimpleStream {
    fn next_access(&mut self) -> Option<PageAccess> {
        if self.remaining == 0 {
            return None;
        }
        let vpn = self.next?;
        self.remaining -= 1;
        self.next = vpn.offset(self.stride);
        Some(self.shape.touch(self.pid, vpn))
    }

    fn name(&self) -> &str {
        "simple"
    }
}

/// A ladder stream: the stride sequence cycles through `tread_strides`
/// followed by one `rise_stride`, repeated `rungs` times.
///
/// With `tread_strides = [2, 2, 2]` and `rise_stride = 12` this produces
/// the exact shape of the paper's Figure 2: three small hops across the
/// interleaved streams, then a jump to the next rung.
#[derive(Clone, Debug)]
pub struct LadderStream {
    pid: Pid,
    current: Option<Vpn>,
    strides: Vec<i64>,
    pos: usize,
    remaining: u64,
    shape: TouchShape,
}

impl LadderStream {
    /// Creates a ladder of `rungs` repetitions of the
    /// `tread_strides ++ [rise_stride]` stride cycle, starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `tread_strides` is empty.
    pub fn new(pid: Pid, start: Vpn, tread_strides: &[i64], rise_stride: i64, rungs: u64) -> Self {
        assert!(
            !tread_strides.is_empty(),
            "a ladder needs at least one tread stride"
        );
        let mut strides = tread_strides.to_vec();
        strides.push(rise_stride);
        let touches_per_rung = strides.len() as u64;
        LadderStream {
            pid,
            current: Some(start),
            strides,
            pos: 0,
            remaining: rungs * touches_per_rung,
            shape: TouchShape::default(),
        }
    }

    /// Sets the cachelines covered per touch.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is 0 or greater than 64.
    pub fn with_lines(mut self, lines: u8) -> Self {
        assert!(lines >= 1 && lines as usize <= LINES_PER_PAGE);
        self.shape.lines = lines;
        self
    }

    /// Sets per-touch compute time.
    pub fn with_think(mut self, think_ns: u32) -> Self {
        self.shape.think_ns = think_ns;
        self
    }
}

impl AccessStream for LadderStream {
    fn next_access(&mut self) -> Option<PageAccess> {
        if self.remaining == 0 {
            return None;
        }
        let vpn = self.current?;
        self.remaining -= 1;
        let stride = self.strides[self.pos];
        self.pos = (self.pos + 1) % self.strides.len();
        self.current = vpn.offset(stride);
        Some(self.shape.touch(self.pid, vpn))
    }

    fn name(&self) -> &str {
        "ladder"
    }
}

/// A ripple stream: a stride-1 scan distorted by bounded out-of-order
/// swaps and occasional hops to a far page that return immediately.
///
/// `jitter` is the probability (0..1) that two adjacent touches are
/// swapped; `hop_every` inserts a far-away interference access every so
/// many touches (0 disables hops). The *cumulative* stride keeps
/// returning to 1, which is the property RSP detects.
#[derive(Clone, Debug)]
pub struct RippleStream {
    pid: Pid,
    queue: Vec<Vpn>,
    pos: usize,
    hop_every: u64,
    hop_base: Vpn,
    issued: u64,
    shape: TouchShape,
}

impl RippleStream {
    /// Creates a ripple stream over pages `start .. start+len`, with the
    /// given out-of-order jitter and hop cadence, deterministically
    /// shuffled from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is not within `0.0..=1.0`.
    pub fn new(pid: Pid, start: Vpn, len: u64, jitter: f64, hop_every: u64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&jitter), "jitter must be in 0..=1");
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut queue: Vec<Vpn> = (0..len)
            .map(|i| Vpn::new(start.raw().saturating_add(i)))
            .collect();
        // Bounded out-of-order: swap adjacent pairs with probability
        // `jitter`. Displacement is at most one page, so |cumulative
        // stride| returns to <= 2 — within RSP's max_stride tolerance.
        let mut i = 0;
        while i + 1 < queue.len() {
            if rng.gen_bool(jitter) {
                queue.swap(i, i + 1);
                i += 2;
            } else {
                i += 1;
            }
        }
        RippleStream {
            pid,
            queue,
            pos: 0,
            hop_every,
            hop_base: Vpn::new(start.raw().saturating_add(len).saturating_add(1 << 20)),
            issued: 0,
            shape: TouchShape::default(),
        }
    }

    /// Sets the cachelines covered per touch.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is 0 or greater than 64.
    pub fn with_lines(mut self, lines: u8) -> Self {
        assert!(lines >= 1 && lines as usize <= LINES_PER_PAGE);
        self.shape.lines = lines;
        self
    }

    /// Sets per-touch compute time.
    pub fn with_think(mut self, think_ns: u32) -> Self {
        self.shape.think_ns = think_ns;
        self
    }

    /// Places the across-stream hop targets at an explicit base (e.g. a
    /// boundary-exchange buffer inside the workload's footprint) instead
    /// of the default far-away region. Hops cycle through 64 pages from
    /// the base.
    pub fn with_hop_base(mut self, base: Vpn) -> Self {
        self.hop_base = base;
        self
    }
}

impl AccessStream for RippleStream {
    fn next_access(&mut self) -> Option<PageAccess> {
        if self.pos >= self.queue.len() {
            return None;
        }
        self.issued += 1;
        if self.hop_every > 0 && self.issued.is_multiple_of(self.hop_every) {
            // A cross-stream access that does not advance the scan.
            let hop = Vpn::new(self.hop_base.raw() + (self.issued / self.hop_every) % 64);
            return Some(self.shape.touch(self.pid, hop));
        }
        let vpn = self.queue[self.pos];
        self.pos += 1;
        Some(self.shape.touch(self.pid, vpn))
    }

    fn name(&self) -> &str {
        "ripple"
    }
}

/// Interference: uniformly random pages in `[lo, hi)` that belong to no
/// stream. Prefetchers must filter these out (§II-B ③).
#[derive(Clone, Debug)]
pub struct NoiseStream {
    pid: Pid,
    lo: u64,
    hi: u64,
    remaining: u64,
    rng: SplitMix64,
    shape: TouchShape,
}

impl NoiseStream {
    /// Creates `len` random touches over the page range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn new(pid: Pid, lo: Vpn, hi: Vpn, len: u64, seed: u64) -> Self {
        assert!(lo < hi, "noise range must be non-empty");
        NoiseStream {
            pid,
            lo: lo.raw(),
            hi: hi.raw(),
            remaining: len,
            rng: SplitMix64::seed_from_u64(seed),
            shape: TouchShape {
                lines: 4, // random touches rarely cover a full page
                ..TouchShape::default()
            },
        }
    }

    /// Sets the cachelines covered per touch.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is 0 or greater than 64.
    pub fn with_lines(mut self, lines: u8) -> Self {
        assert!(lines >= 1 && lines as usize <= LINES_PER_PAGE);
        self.shape.lines = lines;
        self
    }
}

impl AccessStream for NoiseStream {
    fn next_access(&mut self) -> Option<PageAccess> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let vpn = Vpn::new(self.rng.gen_range(self.lo..self.hi));
        Some(self.shape.touch(self.pid, vpn))
    }

    fn name(&self) -> &str {
        "noise"
    }
}

/// Runs child streams one after another: the access-pattern analogue of
/// program *phases* (quicksort's shrinking partitions, a multigrid
/// V-cycle, Spark stages).
pub struct Chain {
    children: Vec<Box<dyn AccessStream>>,
    current: usize,
}

impl std::fmt::Debug for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chain")
            .field("children", &self.children.len())
            .field("current", &self.current)
            .finish()
    }
}

impl Chain {
    /// Chains `children` in order.
    pub fn new(children: Vec<Box<dyn AccessStream>>) -> Self {
        Chain {
            children,
            current: 0,
        }
    }
}

impl AccessStream for Chain {
    fn next_access(&mut self) -> Option<PageAccess> {
        while self.current < self.children.len() {
            if let Some(acc) = self.children[self.current].next_access() {
                return Some(acc);
            }
            self.current += 1;
        }
        None
    }

    fn name(&self) -> &str {
        "chain"
    }
}

/// How an [`Interleaver`] schedules its child streams.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Schedule {
    /// Strict rotation among live children.
    RoundRobin,
    /// Weighted random choice among live children.
    Weighted,
}

/// Merges several streams into one, modelling concurrent threads whose
/// accesses intertwine on the memory bus.
pub struct Interleaver {
    children: Vec<Box<dyn AccessStream>>,
    weights: Vec<u32>,
    live: Vec<bool>,
    schedule: Schedule,
    next_rr: usize,
    rng: SplitMix64,
    label: String,
}

impl std::fmt::Debug for Interleaver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interleaver")
            .field("children", &self.children.len())
            .field("schedule", &self.schedule)
            .finish()
    }
}

impl Interleaver {
    /// Strict round-robin interleaving of `children`.
    pub fn round_robin(children: Vec<Box<dyn AccessStream>>) -> Self {
        let n = children.len();
        Interleaver {
            weights: vec![1; n],
            live: vec![true; n],
            children,
            schedule: Schedule::RoundRobin,
            next_rr: 0,
            rng: SplitMix64::seed_from_u64(0),
            label: "interleave-rr".to_string(),
        }
    }

    /// Weighted random interleaving: child `i` is chosen with probability
    /// proportional to `weights[i]` among children that still have
    /// accesses to give.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != children.len()` or any weight is zero.
    pub fn weighted(children: Vec<Box<dyn AccessStream>>, weights: Vec<u32>, seed: u64) -> Self {
        assert_eq!(children.len(), weights.len());
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        let n = children.len();
        Interleaver {
            live: vec![true; n],
            children,
            weights,
            schedule: Schedule::Weighted,
            next_rr: 0,
            rng: SplitMix64::seed_from_u64(seed),
            label: "interleave-w".to_string(),
        }
    }

    fn pick_live(&mut self) -> Option<usize> {
        match self.schedule {
            Schedule::RoundRobin => {
                let n = self.children.len();
                for step in 0..n {
                    let idx = (self.next_rr + step) % n;
                    if self.live[idx] {
                        self.next_rr = (idx + 1) % n;
                        return Some(idx);
                    }
                }
                None
            }
            Schedule::Weighted => {
                let total: u64 = self
                    .live
                    .iter()
                    .zip(&self.weights)
                    .filter(|(l, _)| **l)
                    .map(|(_, w)| u64::from(*w))
                    .sum();
                if total == 0 {
                    return None;
                }
                let mut pick = self.rng.gen_range(0..total);
                for (idx, (&live, &w)) in self.live.iter().zip(&self.weights).enumerate() {
                    if !live {
                        continue;
                    }
                    if pick < u64::from(w) {
                        return Some(idx);
                    }
                    pick -= u64::from(w);
                }
                unreachable!("weighted pick within total");
            }
        }
    }
}

impl AccessStream for Interleaver {
    fn next_access(&mut self) -> Option<PageAccess> {
        while let Some(idx) = self.pick_live() {
            if let Some(acc) = self.children[idx].next_access() {
                return Some(acc);
            }
            self.live[idx] = false;
        }
        None
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(mut s: impl AccessStream) -> Vec<u64> {
        std::iter::from_fn(|| s.next_access())
            .map(|a| a.vpn.raw())
            .collect()
    }

    #[test]
    fn simple_stream_emits_fixed_stride() {
        let s = SimpleStream::new(Pid::new(1), Vpn::new(100), 3, 4);
        assert_eq!(collect(s), vec![100, 103, 106, 109]);
    }

    #[test]
    fn simple_stream_stops_at_address_zero() {
        let s = SimpleStream::new(Pid::new(1), Vpn::new(2), -2, 5);
        // 2, 0, then underflow terminates early.
        assert_eq!(collect(s), vec![2, 0]);
    }

    #[test]
    fn simple_stream_shape_builders() {
        let mut s = SimpleStream::new(Pid::new(1), Vpn::new(0), 1, 1)
            .with_lines(8)
            .with_think(25)
            .writes();
        let a = s.next_access().unwrap();
        assert_eq!(a.lines, 8);
        assert_eq!(a.think_ns, 25);
        assert_eq!(a.kind, AccessKind::Write);
    }

    #[test]
    fn ladder_stream_matches_figure_2() {
        // Tread strides [2,2,2], rise 12: exactly fig. 2's shape.
        let s = LadderStream::new(Pid::new(1), Vpn::new(0), &[2, 2, 2], 12, 2);
        assert_eq!(collect(s), vec![0, 2, 4, 6, 18, 20, 22, 24]);
    }

    #[test]
    fn ladder_stride_sequence_is_cyclic() {
        let s = LadderStream::new(Pid::new(1), Vpn::new(10), &[1], 5, 3);
        let v = collect(s);
        let strides: Vec<i64> = v.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
        assert_eq!(strides, vec![1, 5, 1, 5, 1]);
    }

    #[test]
    fn ripple_stream_covers_every_page_once() {
        let s = RippleStream::new(Pid::new(1), Vpn::new(50), 40, 0.3, 0, 7);
        let mut v = collect(s);
        v.sort_unstable();
        let expect: Vec<u64> = (50..90).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn ripple_jitter_keeps_cumulative_stride_bounded() {
        let s = RippleStream::new(Pid::new(1), Vpn::new(0), 64, 0.5, 0, 3);
        let v = collect(s);
        // Every page must appear within 1 position of its in-order slot.
        for (pos, page) in v.iter().enumerate() {
            assert!((*page as i64 - pos as i64).abs() <= 1);
        }
    }

    #[test]
    fn ripple_hops_leave_and_return() {
        let s = RippleStream::new(Pid::new(1), Vpn::new(0), 10, 0.0, 4, 1);
        let v = collect(s);
        // Every 4th issued access is a far hop; the scan still covers 0..10.
        let in_range: Vec<u64> = v.iter().copied().filter(|p| *p < 10).collect();
        assert_eq!(in_range, (0..10).collect::<Vec<_>>());
        assert!(v.iter().any(|p| *p >= 10), "expected at least one hop");
    }

    #[test]
    fn noise_stays_in_range_and_is_deterministic() {
        let a = collect(NoiseStream::new(
            Pid::new(1),
            Vpn::new(10),
            Vpn::new(20),
            100,
            42,
        ));
        let b = collect(NoiseStream::new(
            Pid::new(1),
            Vpn::new(10),
            Vpn::new(20),
            100,
            42,
        ));
        assert_eq!(a, b);
        assert!(a.iter().all(|p| (10..20).contains(p)));
    }

    #[test]
    fn round_robin_alternates_and_drains() {
        let s1 = SimpleStream::new(Pid::new(1), Vpn::new(0), 1, 3);
        let s2 = SimpleStream::new(Pid::new(2), Vpn::new(100), 1, 1);
        let inter = Interleaver::round_robin(vec![Box::new(s1), Box::new(s2)]);
        assert_eq!(collect(inter), vec![0, 100, 1, 2]);
    }

    #[test]
    fn weighted_interleaver_is_deterministic_and_complete() {
        let make = || {
            let s1 = SimpleStream::new(Pid::new(1), Vpn::new(0), 1, 50);
            let s2 = SimpleStream::new(Pid::new(2), Vpn::new(1000), 1, 50);
            Interleaver::weighted(vec![Box::new(s1), Box::new(s2)], vec![3, 1], 9)
        };
        let a = collect(make());
        let b = collect(make());
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_eq!(a.iter().filter(|p| **p < 1000).count(), 50);
    }

    #[test]
    fn chain_runs_children_in_order() {
        let s1 = SimpleStream::new(Pid::new(1), Vpn::new(0), 1, 2);
        let s2 = SimpleStream::new(Pid::new(1), Vpn::new(100), 1, 2);
        let c = Chain::new(vec![Box::new(s1), Box::new(s2)]);
        assert_eq!(collect(c), vec![0, 1, 100, 101]);
    }

    #[test]
    fn chain_skips_empty_children() {
        let empty = SimpleStream::new(Pid::new(1), Vpn::new(0), 1, 0);
        let s = SimpleStream::new(Pid::new(1), Vpn::new(5), 1, 1);
        let c = Chain::new(vec![Box::new(empty), Box::new(s)]);
        assert_eq!(collect(c), vec![5]);
        assert!(Chain::new(vec![]).next_access().is_none());
    }

    #[test]
    #[should_panic]
    fn weighted_rejects_zero_weight() {
        let s1 = SimpleStream::new(Pid::new(1), Vpn::new(0), 1, 1);
        let _ = Interleaver::weighted(vec![Box::new(s1)], vec![0], 1);
    }
}
