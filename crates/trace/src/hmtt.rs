//! HMTT trace-record emulation.
//!
//! The paper's prototype deploys HMTT as a bump-in-the-wire between the
//! memory controller and DRAM. Each captured trace record has four
//! fields (§V): an 8-bit sequence number, an 8-bit timestamp, a 1-bit
//! read/write flag and a 29-bit physical address. Records are DMA'd into
//! a reserved DRAM area on a second socket so the tracer cannot observe
//! its own writes.
//!
//! This module reproduces the record format bit-exactly ([`HmttRecord`]),
//! including the information loss it implies: both the sequence number
//! and the timestamp wrap at 256, so the consumer must reconstruct full
//! ordering and time ([`HmttDecoder`]), and the 29-bit address field
//! limits the traceable physical space to 32 GB of cachelines. The
//! reserved DRAM area is modelled by [`TraceRing`], a bounded ring that
//! counts overruns when software falls behind the hardware producer.

use std::io::{self, Read, Write};
use std::path::Path;

use hopp_types::{AccessKind, LineAccess, LineAddr, Nanos};

/// Mask for the 29-bit physical (cacheline) address field.
const ADDR_MASK: u64 = (1 << 29) - 1;

/// Granularity of the 8-bit hardware timestamp in nanoseconds.
///
/// HMTT timestamps tick coarsely; 64 ns per tick keeps the wrap period
/// (16.4 µs) comfortably above the inter-record gap of a busy memory
/// bus, which is what the reconstruction relies on.
pub const TIMESTAMP_TICK_NS: u64 = 64;

/// One HMTT trace record, packed exactly as the hardware emits it.
///
/// # Example
///
/// ```
/// use hopp_trace::hmtt::HmttRecord;
/// use hopp_types::{AccessKind, LineAccess, LineAddr, Nanos};
///
/// let acc = LineAccess { addr: LineAddr::new(0x1abcd), kind: AccessKind::Read,
///                        at: Nanos::from_nanos(640) };
/// let rec = HmttRecord::capture(7, &acc);
/// assert_eq!(rec.seqno(), 7);
/// assert_eq!(rec.addr(), LineAddr::new(0x1abcd));
/// assert!(rec.is_read());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HmttRecord(u64);

impl HmttRecord {
    /// Packs an observed bus access into the 46-bit record layout:
    /// `[seqno:8][timestamp:8][rw:1][addr:29]` (stored in a `u64`).
    ///
    /// The physical address is truncated to 29 bits, exactly as the
    /// hardware would; `seqno` is truncated to 8 bits.
    pub fn capture(seqno: u64, access: &LineAccess) -> Self {
        let ts = (access.at.as_nanos() / TIMESTAMP_TICK_NS) & 0xff;
        let rw = u64::from(matches!(access.kind, AccessKind::Read));
        let addr = access.addr.raw() & ADDR_MASK;
        HmttRecord(((seqno & 0xff) << 38) | (ts << 30) | (rw << 29) | addr)
    }

    /// The raw packed bits.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a record from raw bits (e.g. read back from the ring).
    pub const fn from_raw(raw: u64) -> Self {
        HmttRecord(raw)
    }

    /// The 8-bit wrapping sequence number.
    pub const fn seqno(self) -> u8 {
        ((self.0 >> 38) & 0xff) as u8
    }

    /// The 8-bit wrapping timestamp (in [`TIMESTAMP_TICK_NS`] ticks).
    pub const fn timestamp_ticks(self) -> u8 {
        ((self.0 >> 30) & 0xff) as u8
    }

    /// True if the access was a read.
    pub const fn is_read(self) -> bool {
        (self.0 >> 29) & 1 == 1
    }

    /// The 29-bit physical cacheline address.
    pub const fn addr(self) -> LineAddr {
        LineAddr::new(self.0 & ADDR_MASK)
    }
}

/// Reconstructs full timestamps and detects sequence gaps from the
/// wrapping 8-bit fields of a record stream.
///
/// The prototype's software HPD consumes records from the reserved DRAM
/// area; since both counters wrap at 256 it must count wraps. The
/// decoder assumes records arrive in capture order and that consecutive
/// records are less than one timestamp wrap (≈16 µs) apart — true for
/// any bus busy enough to be worth prefetching for.
#[derive(Clone, Debug, Default)]
pub struct HmttDecoder {
    last_seq: Option<u8>,
    last_ticks: Option<u8>,
    tick_wraps: u64,
    /// Records lost between the last two decoded records (seqno gaps).
    pub dropped: u64,
}

impl HmttDecoder {
    /// Creates a decoder with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes the next record, returning the access with a
    /// reconstructed absolute timestamp.
    pub fn decode(&mut self, rec: HmttRecord) -> LineAccess {
        if let Some(prev) = self.last_seq {
            let gap = rec.seqno().wrapping_sub(prev);
            if gap != 1 {
                self.dropped += u64::from(gap.wrapping_sub(1));
            }
        }
        self.last_seq = Some(rec.seqno());

        let ticks = rec.timestamp_ticks();
        if let Some(prev) = self.last_ticks {
            if ticks < prev {
                self.tick_wraps += 1;
            }
        }
        self.last_ticks = Some(ticks);

        let abs_ticks = self.tick_wraps * 256 + u64::from(ticks);
        LineAccess {
            addr: rec.addr(),
            kind: if rec.is_read() {
                AccessKind::Read
            } else {
                AccessKind::Write
            },
            at: Nanos::from_nanos(abs_ticks * TIMESTAMP_TICK_NS),
        }
    }
}

/// The reserved DRAM ring the receiving card DMA-writes records into.
///
/// When the software consumer falls behind, the hardware overwrites the
/// oldest records; [`TraceRing::overruns`] counts how many were lost.
#[derive(Clone, Debug)]
pub struct TraceRing {
    buf: Vec<u64>,
    head: usize,
    len: usize,
    overruns: u64,
}

impl TraceRing {
    /// Creates a ring holding `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be non-zero");
        TraceRing {
            buf: vec![0; capacity],
            head: 0,
            len: 0,
            overruns: 0,
        }
    }

    /// Appends a record, overwriting the oldest when full.
    pub fn push(&mut self, rec: HmttRecord) {
        let tail = (self.head + self.len) % self.buf.len();
        self.buf[tail] = rec.raw();
        if self.len == self.buf.len() {
            // Overwrote the oldest unread record.
            self.head = (self.head + 1) % self.buf.len();
            self.overruns += 1;
        } else {
            self.len += 1;
        }
    }

    /// Removes and returns the oldest record, if any.
    pub fn pop(&mut self) -> Option<HmttRecord> {
        if self.len == 0 {
            return None;
        }
        let rec = HmttRecord::from_raw(self.buf[self.head]);
        self.head = (self.head + 1) % self.buf.len();
        self.len -= 1;
        Some(rec)
    }

    /// Number of unread records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no unread records remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records lost to producer overrun since creation.
    pub fn overruns(&self) -> u64 {
        self.overruns
    }
}

/// On-disk HMTT trace format: an 8-byte magic header followed by raw
/// little-endian `u64` records. This is how the paper's offline studies
/// persist captures for later analysis (§II-B, §VI-D); the
/// `offline_trace_study` example can be pointed at saved files.
pub mod file {
    use super::*;

    /// File magic: `HMTTRAW1`.
    pub const MAGIC: [u8; 8] = *b"HMTTRAW1";

    /// Writes records to `writer` in the on-disk format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write<W: Write>(mut writer: W, records: &[HmttRecord]) -> io::Result<()> {
        writer.write_all(&MAGIC)?;
        for rec in records {
            writer.write_all(&rec.raw().to_le_bytes())?;
        }
        Ok(())
    }

    /// Reads a full trace from `reader`.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic or a truncated record, and
    /// propagates I/O errors.
    pub fn read<R: Read>(mut reader: R) -> io::Result<Vec<HmttRecord>> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an HMTT trace file",
            ));
        }
        let mut body = Vec::new();
        reader.read_to_end(&mut body)?;
        if !body.len().is_multiple_of(8) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated HMTT record",
            ));
        }
        Ok(body
            .chunks_exact(8)
            .map(|c| HmttRecord::from_raw(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect())
    }

    /// Saves records to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save<P: AsRef<Path>>(path: P, records: &[HmttRecord]) -> io::Result<()> {
        write(std::fs::File::create(path)?, records)
    }

    /// Loads records from a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and format errors from [`read`].
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Vec<HmttRecord>> {
        read(std::fs::File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(addr: u64, ns: u64, kind: AccessKind) -> LineAccess {
        LineAccess {
            addr: LineAddr::new(addr),
            kind,
            at: Nanos::from_nanos(ns),
        }
    }

    #[test]
    fn record_roundtrip() {
        let a = acc(0x1fff_ffff, 12 * TIMESTAMP_TICK_NS, AccessKind::Write);
        let r = HmttRecord::capture(300, &a); // seqno wraps to 44
        assert_eq!(r.seqno(), 44);
        assert_eq!(r.timestamp_ticks(), 12);
        assert!(!r.is_read());
        assert_eq!(r.addr(), LineAddr::new(0x1fff_ffff));
        assert_eq!(HmttRecord::from_raw(r.raw()), r);
    }

    #[test]
    fn address_truncates_to_29_bits() {
        let a = acc(0x7_1234_5678, 0, AccessKind::Read);
        let r = HmttRecord::capture(0, &a);
        assert_eq!(r.addr().raw(), 0x7_1234_5678 & ((1 << 29) - 1));
    }

    #[test]
    fn decoder_reconstructs_time_across_wraps() {
        let mut dec = HmttDecoder::new();
        let tick = TIMESTAMP_TICK_NS;
        // Three records spaced 200 ticks apart: the third crosses a wrap.
        let times = [10 * tick, 210 * tick, 410 * tick];
        let mut decoded = Vec::new();
        for (i, t) in times.iter().enumerate() {
            let r = HmttRecord::capture(i as u64, &acc(i as u64, *t, AccessKind::Read));
            decoded.push(dec.decode(r).at.as_nanos());
        }
        assert_eq!(decoded, vec![10 * tick, 210 * tick, 410 * tick]);
        assert_eq!(dec.dropped, 0);
    }

    #[test]
    fn decoder_counts_sequence_gaps() {
        let mut dec = HmttDecoder::new();
        let r0 = HmttRecord::capture(0, &acc(0, 0, AccessKind::Read));
        let r5 = HmttRecord::capture(5, &acc(1, 64, AccessKind::Read));
        dec.decode(r0);
        dec.decode(r5);
        assert_eq!(dec.dropped, 4);
    }

    #[test]
    fn ring_fifo_order() {
        let mut ring = TraceRing::new(4);
        for i in 0..3 {
            ring.push(HmttRecord::capture(i, &acc(i, 0, AccessKind::Read)));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pop().unwrap().seqno(), 0);
        assert_eq!(ring.pop().unwrap().seqno(), 1);
        assert_eq!(ring.pop().unwrap().seqno(), 2);
        assert!(ring.pop().is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_overrun_drops_oldest() {
        let mut ring = TraceRing::new(2);
        for i in 0..5 {
            ring.push(HmttRecord::capture(i, &acc(i, 0, AccessKind::Read)));
        }
        assert_eq!(ring.overruns(), 3);
        assert_eq!(ring.len(), 2);
        // Oldest surviving records are seqno 3 and 4.
        assert_eq!(ring.pop().unwrap().seqno(), 3);
        assert_eq!(ring.pop().unwrap().seqno(), 4);
    }

    #[test]
    #[should_panic]
    fn ring_rejects_zero_capacity() {
        let _ = TraceRing::new(0);
    }

    #[test]
    fn file_roundtrip() {
        let records: Vec<HmttRecord> = (0..100u64)
            .map(|i| HmttRecord::capture(i, &acc(i * 3, i * 64, AccessKind::Read)))
            .collect();
        let mut buf = Vec::new();
        file::write(&mut buf, &records).unwrap();
        assert_eq!(buf.len(), 8 + 100 * 8);
        let back = file::read(&buf[..]).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn file_rejects_bad_magic_and_truncation() {
        assert!(file::read(&b"NOTATRCE"[..]).is_err());
        let mut buf = Vec::new();
        file::write(
            &mut buf,
            &[HmttRecord::capture(0, &acc(0, 0, AccessKind::Read))],
        )
        .unwrap();
        buf.pop(); // truncate the record
        assert!(file::read(&buf[..]).is_err());
    }

    #[test]
    fn file_save_load_on_disk() {
        let path =
            std::env::temp_dir().join(format!("hopp_hmtt_test_{}.trace", std::process::id()));
        let records: Vec<HmttRecord> = (0..8u64)
            .map(|i| HmttRecord::capture(i, &acc(i, i * 64, AccessKind::Write)))
            .collect();
        file::save(&path, &records).unwrap();
        let back = file::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, records);
    }
}
