#![warn(missing_docs)]
//! Synthetic access-pattern models of the paper's 15 applications.
//!
//! The paper evaluates real binaries (Spark/GraphX jobs, NPB kernels,
//! HPL, quicksort, K-means) on a hardware testbed. A prefetcher,
//! however, only ever observes each application's *page access
//! sequence*, so for simulation purposes a workload is fully
//! characterized by the stream mix it produces. Each model here
//! composes the pattern generators of `hopp-trace` to reproduce the
//! pattern classes §II-B and §VI-D attribute to the corresponding
//! application:
//!
//! | model | dominant patterns |
//! |---|---|
//! | `Kmeans` (OMP) | long stride-1 simple streams, 2 threads |
//! | `Quicksort` | phase-chained shrinking sequential scans |
//! | `Hpl` | ladder streams (blocked matrix updates) |
//! | `NpbCg` | vector stream + sparse random column accesses |
//! | `NpbFt` | dimension passes: stride-1 then large-stride column scans |
//! | `NpbLu` | several aligned wavefront streams |
//! | `NpbMg` | ripple streams over a multigrid V-cycle |
//! | `NpbIs` | sequential key scan + random bucket traffic |
//! | `GraphBfs/Cc/Pr/Lp` | edge-list streams + vertex ripples + noise |
//! | `SparkKmeans/SparkBayes` | short per-stage streams + GC noise (JVM) |
//! | `Microbench` | §VI-E's two-thread read-and-add benchmark |
//!
//! Every model is deterministic in `(pid, footprint, seed)`.
//!
//! # Example
//!
//! ```
//! use hopp_workloads::WorkloadKind;
//! use hopp_trace::AccessStream;
//! use hopp_types::Pid;
//!
//! let mut w = WorkloadKind::Kmeans.build(Pid::new(1), 1_024, 42);
//! let first = w.next_access().unwrap();
//! assert_eq!(first.pid, Pid::new(1));
//! ```

pub mod compute;
pub mod graph;
pub mod npb;
pub mod spark;

use hopp_trace::AccessStream;
use hopp_types::Pid;

/// Base virtual page of every workload's heap, far from page zero so
/// negative-stride prediction never underflows the address space.
pub const HEAP_BASE: u64 = 1 << 20;

/// The workload catalogue (Table IV of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WorkloadKind {
    /// OMP K-means: two threads scanning a large array repeatedly.
    Kmeans,
    /// Quicksort over a 4 GB array (scaled).
    Quicksort,
    /// High Performance Linpack: blocked matrix factorization.
    Hpl,
    /// NPB conjugate gradient.
    NpbCg,
    /// NPB 3-D FFT.
    NpbFt,
    /// NPB LU factorization (wavefront).
    NpbLu,
    /// NPB multigrid.
    NpbMg,
    /// NPB integer sort.
    NpbIs,
    /// GraphX breadth-first search (on Spark).
    GraphBfs,
    /// GraphX connected components (on Spark).
    GraphCc,
    /// GraphX PageRank (on Spark).
    GraphPr,
    /// GraphX label propagation (on Spark).
    GraphLp,
    /// Spark K-means.
    SparkKmeans,
    /// Spark Bayes.
    SparkBayes,
    /// The §VI-E microbenchmark: 2 threads read-and-add all 8-byte
    /// words of their 2 GB partitions.
    Microbench,
}

impl WorkloadKind {
    /// All fifteen workloads.
    pub const ALL: [WorkloadKind; 15] = [
        WorkloadKind::Kmeans,
        WorkloadKind::Quicksort,
        WorkloadKind::Hpl,
        WorkloadKind::NpbCg,
        WorkloadKind::NpbFt,
        WorkloadKind::NpbLu,
        WorkloadKind::NpbMg,
        WorkloadKind::NpbIs,
        WorkloadKind::GraphBfs,
        WorkloadKind::GraphCc,
        WorkloadKind::GraphPr,
        WorkloadKind::GraphLp,
        WorkloadKind::SparkKmeans,
        WorkloadKind::SparkBayes,
        WorkloadKind::Microbench,
    ];

    /// The non-JVM programs of Fig 9–11 and Fig 16–21.
    pub const NON_JVM: [WorkloadKind; 8] = [
        WorkloadKind::Kmeans,
        WorkloadKind::Quicksort,
        WorkloadKind::Hpl,
        WorkloadKind::NpbCg,
        WorkloadKind::NpbFt,
        WorkloadKind::NpbLu,
        WorkloadKind::NpbMg,
        WorkloadKind::NpbIs,
    ];

    /// The Spark/JVM workloads of Fig 12–14.
    pub const SPARK: [WorkloadKind; 6] = [
        WorkloadKind::GraphBfs,
        WorkloadKind::GraphCc,
        WorkloadKind::GraphPr,
        WorkloadKind::GraphLp,
        WorkloadKind::SparkKmeans,
        WorkloadKind::SparkBayes,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Kmeans => "Kmeans-OMP",
            WorkloadKind::Quicksort => "Quicksort",
            WorkloadKind::Hpl => "HPL",
            WorkloadKind::NpbCg => "NPB-CG",
            WorkloadKind::NpbFt => "NPB-FT",
            WorkloadKind::NpbLu => "NPB-LU",
            WorkloadKind::NpbMg => "NPB-MG",
            WorkloadKind::NpbIs => "NPB-IS",
            WorkloadKind::GraphBfs => "GraphX-BFS",
            WorkloadKind::GraphCc => "GraphX-CC",
            WorkloadKind::GraphPr => "GraphX-PR",
            WorkloadKind::GraphLp => "GraphX-LP",
            WorkloadKind::SparkKmeans => "Kmeans-Spark",
            WorkloadKind::SparkBayes => "Bayes-Spark",
            WorkloadKind::Microbench => "Microbench",
        }
    }

    /// True for JVM-hosted workloads (different memory layout; §VI-B).
    pub fn is_jvm(self) -> bool {
        matches!(
            self,
            WorkloadKind::GraphBfs
                | WorkloadKind::GraphCc
                | WorkloadKind::GraphPr
                | WorkloadKind::GraphLp
                | WorkloadKind::SparkKmeans
                | WorkloadKind::SparkBayes
        )
    }

    /// The footprint the paper's instance of this workload occupies
    /// (Table IV), in GB. The GraphX jobs share one 33 GB Spark heap.
    pub fn paper_footprint_gb(self) -> f64 {
        match self {
            WorkloadKind::GraphBfs
            | WorkloadKind::GraphCc
            | WorkloadKind::GraphPr
            | WorkloadKind::GraphLp
            | WorkloadKind::SparkBayes => 33.0,
            WorkloadKind::SparkKmeans => 13.0,
            WorkloadKind::Kmeans => 3.2,
            WorkloadKind::Hpl => 1.2,
            WorkloadKind::NpbCg
            | WorkloadKind::NpbFt
            | WorkloadKind::NpbLu
            | WorkloadKind::NpbMg
            | WorkloadKind::NpbIs => 4.0, // NPB spans 1-7 GB; midpoint
            WorkloadKind::Quicksort => 4.0,
            WorkloadKind::Microbench => 4.0, // 2 threads x 2 GB
        }
    }

    /// The cores the paper assigns the workload (Table IV).
    pub fn paper_cores(self) -> u32 {
        match self {
            WorkloadKind::GraphBfs
            | WorkloadKind::GraphCc
            | WorkloadKind::GraphPr
            | WorkloadKind::GraphLp => 14,
            WorkloadKind::SparkBayes => 4,
            WorkloadKind::SparkKmeans => 3,
            WorkloadKind::Kmeans => 2,
            WorkloadKind::Hpl => 2,
            WorkloadKind::NpbCg
            | WorkloadKind::NpbFt
            | WorkloadKind::NpbLu
            | WorkloadKind::NpbMg
            | WorkloadKind::NpbIs => 2,
            WorkloadKind::Quicksort => 1,
            WorkloadKind::Microbench => 2,
        }
    }

    /// A one-line description of the access-pattern model.
    pub fn description(self) -> &'static str {
        match self {
            WorkloadKind::Kmeans => "two threads scanning a contiguous array, 3 iterations",
            WorkloadKind::Quicksort => "phase-chained sequential scans over shrinking partitions",
            WorkloadKind::Hpl => "blocked LU: panel scans + ladder-shaped trailing updates",
            WorkloadKind::NpbCg => "vector sweeps + sparse random gathers",
            WorkloadKind::NpbFt => "row-major sweeps + large-stride column passes",
            WorkloadKind::NpbLu => "aligned wavefront streams, forward then backward",
            WorkloadKind::NpbMg => "ripple streams over a multigrid V-cycle with exchange hops",
            WorkloadKind::NpbIs => "key scan + random bucket traffic, two passes",
            WorkloadKind::GraphBfs => "fragmented frontier scans, heavy neighbour noise",
            WorkloadKind::GraphCc => "label updates: edge scans + vertex ripple + noise",
            WorkloadKind::GraphPr => "regular per-iteration edge sweeps, mild noise",
            WorkloadKind::GraphLp => "edge sweeps + vertex ripple, moderate noise",
            WorkloadKind::SparkKmeans => "staged JVM regions, 3 passes per stage, GC noise",
            WorkloadKind::SparkBayes => "more, shorter stages, heavier shuffle/GC noise",
            WorkloadKind::Microbench => "2 threads read-and-add their 2 GB halves (§VI-E)",
        }
    }

    /// Builds the access stream for one run.
    ///
    /// `footprint_pages` is the model's heap size in 4 KB pages; the
    /// stream touches pages in `[HEAP_BASE, HEAP_BASE + footprint)`.
    /// `seed` drives all randomness deterministically.
    pub fn build(self, pid: Pid, footprint_pages: u64, seed: u64) -> Box<dyn AccessStream> {
        assert!(
            footprint_pages >= 256,
            "footprint too small to be meaningful"
        );
        match self {
            WorkloadKind::Kmeans => compute::kmeans_omp(pid, footprint_pages, seed),
            WorkloadKind::Quicksort => compute::quicksort(pid, footprint_pages, seed),
            WorkloadKind::Hpl => compute::hpl(pid, footprint_pages, seed),
            WorkloadKind::NpbCg => npb::cg(pid, footprint_pages, seed),
            WorkloadKind::NpbFt => npb::ft(pid, footprint_pages, seed),
            WorkloadKind::NpbLu => npb::lu(pid, footprint_pages, seed),
            WorkloadKind::NpbMg => npb::mg(pid, footprint_pages, seed),
            WorkloadKind::NpbIs => npb::is(pid, footprint_pages, seed),
            WorkloadKind::GraphBfs => graph::bfs(pid, footprint_pages, seed),
            WorkloadKind::GraphCc => graph::cc(pid, footprint_pages, seed),
            WorkloadKind::GraphPr => graph::pr(pid, footprint_pages, seed),
            WorkloadKind::GraphLp => graph::lp(pid, footprint_pages, seed),
            WorkloadKind::SparkKmeans => spark::kmeans(pid, footprint_pages, seed),
            WorkloadKind::SparkBayes => spark::bayes(pid, footprint_pages, seed),
            WorkloadKind::Microbench => compute::microbench(pid, footprint_pages, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(kind: WorkloadKind) -> Vec<hopp_types::PageAccess> {
        let mut s = kind.build(Pid::new(7), 1_024, 11);
        std::iter::from_fn(|| s.next_access()).collect()
    }

    #[test]
    fn every_workload_produces_accesses_within_bounds() {
        for kind in WorkloadKind::ALL {
            let accs = drain(kind);
            assert!(
                accs.len() >= 1_000,
                "{} produced only {} accesses",
                kind.name(),
                accs.len()
            );
            for a in &accs {
                assert_eq!(a.pid, Pid::new(7), "{}", kind.name());
                assert!(
                    a.vpn.raw() >= HEAP_BASE && a.vpn.raw() < HEAP_BASE + 1_024,
                    "{} escaped its footprint: {:?}",
                    kind.name(),
                    a.vpn
                );
            }
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for kind in WorkloadKind::ALL {
            let a = drain(kind);
            let b = drain(kind);
            assert_eq!(a, b, "{} is not deterministic", kind.name());
        }
    }

    #[test]
    fn seeds_change_randomized_workloads() {
        let a: Vec<_> = {
            let mut s = WorkloadKind::GraphBfs.build(Pid::new(1), 1_024, 1);
            std::iter::from_fn(|| s.next_access())
                .map(|a| a.vpn)
                .collect()
        };
        let b: Vec<_> = {
            let mut s = WorkloadKind::GraphBfs.build(Pid::new(1), 1_024, 2);
            std::iter::from_fn(|| s.next_access())
                .map(|a| a.vpn)
                .collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn footprint_is_actually_used() {
        // Each workload must touch a large fraction of its declared
        // footprint (it is an in-memory application, not a point probe).
        for kind in WorkloadKind::ALL {
            let accs = drain(kind);
            let distinct: std::collections::HashSet<u64> =
                accs.iter().map(|a| a.vpn.raw()).collect();
            assert!(
                distinct.len() as u64 >= 1_024 / 2,
                "{} touched only {} of 1024 pages",
                kind.name(),
                distinct.len()
            );
        }
    }

    #[test]
    fn groups_partition_the_catalogue() {
        assert_eq!(
            WorkloadKind::NON_JVM.len() + WorkloadKind::SPARK.len() + 1,
            15
        );
        for k in WorkloadKind::SPARK {
            assert!(k.is_jvm());
        }
        for k in WorkloadKind::NON_JVM {
            assert!(!k.is_jvm());
        }
    }

    #[test]
    #[should_panic]
    fn tiny_footprints_are_rejected() {
        let _ = WorkloadKind::Kmeans.build(Pid::new(1), 8, 0);
    }

    #[test]
    fn table_iv_metadata_is_complete() {
        for kind in WorkloadKind::ALL {
            assert!(kind.paper_footprint_gb() > 0.0, "{}", kind.name());
            assert!(kind.paper_cores() >= 1, "{}", kind.name());
            assert!(!kind.description().is_empty(), "{}", kind.name());
        }
        // Spot checks against Table IV.
        assert_eq!(WorkloadKind::GraphBfs.paper_cores(), 14);
        assert_eq!(WorkloadKind::Quicksort.paper_cores(), 1);
        assert_eq!(WorkloadKind::SparkKmeans.paper_footprint_gb(), 13.0);
        assert_eq!(WorkloadKind::Hpl.paper_footprint_gb(), 1.2);
    }
}
