//! GraphX workloads (running on Spark): BFS, CC, PageRank, Label
//! Propagation.
//!
//! Graph analytics on Spark stores vertex and edge partitions as large
//! arrays. Per superstep, edge partitions are scanned sequentially
//! (long simple streams), vertex state is updated mostly in order but
//! with stencil-like jitter (ripple streams), and random neighbour
//! lookups add interference. Being JVM workloads, their regions are
//! re-allocated across stages, so streams are shorter and patterns
//! restart more often than in the native programs (§VI-B) — which is
//! why the paper's Spark coverage numbers are lower.

use hopp_trace::patterns::{
    AccessStream, Chain, Interleaver, NoiseStream, RippleStream, SimpleStream,
};
use hopp_types::Pid;

use crate::HEAP_BASE;

const THINK_NS: u32 = 300;

/// Observable LLC misses per edge-scan page touch.
const SCAN_LINES: u8 = 40;
/// Vertex updates touch fewer lines (stencil-like updates).
const VERTEX_LINES: u8 = 16;

/// Shared shape: `iters` supersteps; per superstep the edge region is
/// scanned in `segments` separate streams (JVM partitioning), the
/// vertex region ripples, and `noise_weight` controls random lookups.
fn supersteps(
    pid: Pid,
    footprint: u64,
    seed: u64,
    iters: u64,
    segments: u64,
    noise_weight: u32,
    jitter: f64,
) -> Box<dyn AccessStream> {
    let vertex = footprint / 4;
    let edges = footprint - vertex;
    let seg_len = edges / segments;
    let mut phases: Vec<Box<dyn AccessStream>> = Vec::new();
    for it in 0..iters {
        let mut children: Vec<Box<dyn AccessStream>> = Vec::new();
        let mut weights: Vec<u32> = Vec::new();
        // Edge partitions: scanned in partition order within the step.
        let parts: Vec<Box<dyn AccessStream>> = (0..segments)
            .map(|s| {
                Box::new(
                    SimpleStream::new(pid, (HEAP_BASE + vertex + s * seg_len).into(), 1, seg_len)
                        .with_lines(SCAN_LINES)
                        .with_think(THINK_NS),
                ) as Box<dyn AccessStream>
            })
            .collect();
        children.push(Box::new(Chain::new(parts)));
        weights.push(4);
        // Vertex updates: a ripple over the vertex region.
        children.push(Box::new(
            RippleStream::new(
                pid,
                HEAP_BASE.into(),
                vertex,
                jitter,
                0,
                seed.wrapping_add(it),
            )
            .with_lines(VERTEX_LINES)
            .with_think(THINK_NS),
        ));
        weights.push(2);
        // Random neighbour lookups into the vertex region.
        if noise_weight > 0 {
            children.push(Box::new(
                NoiseStream::new(
                    pid,
                    HEAP_BASE.into(),
                    (HEAP_BASE + vertex).into(),
                    vertex / 2,
                    seed ^ (it << 8),
                )
                .with_lines(2),
            ));
            weights.push(noise_weight);
        }
        phases.push(Box::new(Interleaver::weighted(
            children,
            weights,
            seed.wrapping_add(1_000 + it),
        )));
    }
    Box::new(Chain::new(phases))
}

/// Breadth-first search: few supersteps, fragmented frontier (many
/// short edge segments), heavy random neighbour access.
pub fn bfs(pid: Pid, footprint: u64, seed: u64) -> Box<dyn AccessStream> {
    supersteps(pid, footprint, seed, 3, 12, 3, 0.4)
}

/// Connected components: like BFS but with more label-update noise.
pub fn cc(pid: Pid, footprint: u64, seed: u64) -> Box<dyn AccessStream> {
    supersteps(pid, footprint, seed.wrapping_add(1), 3, 8, 3, 0.4)
}

/// PageRank: the most regular of the four — full edge sweeps each
/// iteration with milder noise.
pub fn pr(pid: Pid, footprint: u64, seed: u64) -> Box<dyn AccessStream> {
    supersteps(pid, footprint, seed.wrapping_add(2), 3, 4, 1, 0.25)
}

/// Label propagation: regular sweeps, moderate noise.
pub fn lp(pid: Pid, footprint: u64, seed: u64) -> Box<dyn AccessStream> {
    supersteps(pid, footprint, seed.wrapping_add(3), 3, 6, 2, 0.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(mut s: Box<dyn AccessStream>) -> Vec<u64> {
        std::iter::from_fn(|| s.next_access())
            .map(|a| a.vpn.raw() - HEAP_BASE)
            .collect()
    }

    #[test]
    fn edge_scans_dominate_pr() {
        let v = pages(pr(Pid::new(1), 2_048, 7));
        let vertex = 512;
        let edge_hits = v.iter().filter(|&&p| p >= vertex).count();
        assert!(edge_hits * 2 > v.len(), "edge region dominates");
    }

    #[test]
    fn bfs_is_noisier_than_pr() {
        // Count stride-1 pairs as a regularity proxy. A single seed can
        // land on either side of the margin, so compare the mean over
        // several seeds: the structural claim (PR has fewer segments,
        // less jitter and less noise than BFS) must win on average.
        let reg = |v: &[u64]| {
            v.windows(2)
                .filter(|w| w[1] as i64 - w[0] as i64 == 1)
                .count() as f64
                / v.len() as f64
        };
        let mean = |f: fn(Pid, u64, u64) -> Box<dyn AccessStream>| {
            (0..5u64)
                .map(|s| reg(&pages(f(Pid::new(1), 2_048, 7 + s))))
                .sum::<f64>()
                / 5.0
        };
        assert!(mean(pr) > mean(bfs), "PR is more sequential than BFS");
    }

    #[test]
    fn all_variants_cover_vertex_and_edge_regions() {
        for f in [bfs, cc, pr, lp] {
            let v = pages(f(Pid::new(1), 1_024, 3));
            assert!(v.iter().any(|&p| p < 256), "vertex region touched");
            assert!(v.iter().any(|&p| p >= 256), "edge region touched");
            assert!(v.iter().all(|&p| p < 1_024), "stays in footprint");
        }
    }
}
