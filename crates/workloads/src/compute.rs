//! Native (non-JVM) compute workloads: K-means, quicksort, HPL, and the
//! §VI-E microbenchmark.

use hopp_trace::patterns::{AccessStream, Chain, Interleaver, LadderStream, SimpleStream};
use hopp_types::Pid;

use crate::HEAP_BASE;

/// Per-page compute time for arithmetic-heavy loops: 512 additions per
/// page (§VI-E's benchmark body) at ~1 ns each.
const ADD_THINK_NS: u32 = 500;

/// Cachelines that actually miss the LLC per streaming page touch.
/// Real CPUs hide a good fraction of a sequential page's 64 lines
/// behind hardware line prefetchers and open DRAM rows; 24 observable
/// misses per page keeps the compute/remote-stall ratio close to the
/// paper's testbed.
const SCAN_LINES: u8 = 40;

/// OMP K-means: a large contiguous array of points scanned fully on
/// every iteration by two worker threads, each owning half the array
/// (§VI-B: "OMP-Kmeans allocates a large array and writes all the data
/// into a contiguous memory"). Three iterations.
pub fn kmeans_omp(pid: Pid, footprint: u64, _seed: u64) -> Box<dyn AccessStream> {
    let half = footprint / 2;
    let iters = 3;
    let threads: Vec<Box<dyn AccessStream>> = (0..2u64)
        .map(|t| {
            let base = HEAP_BASE + t * half;
            let passes: Vec<Box<dyn AccessStream>> = (0..iters)
                .map(|_| {
                    Box::new(
                        SimpleStream::new(pid, base.into(), 1, half)
                            .with_lines(SCAN_LINES)
                            .with_think(ADD_THINK_NS),
                    ) as Box<dyn AccessStream>
                })
                .collect();
            Box::new(Chain::new(passes)) as Box<dyn AccessStream>
        })
        .collect();
    Box::new(Interleaver::round_robin(threads))
}

/// Quicksort: each recursion level sequentially scans its partition to
/// pivot and swap, producing phase-chained scans over shrinking,
/// adjacent ranges. Recursion stops at 32-page partitions.
pub fn quicksort(pid: Pid, footprint: u64, _seed: u64) -> Box<dyn AccessStream> {
    let mut phases: Vec<Box<dyn AccessStream>> = Vec::new();
    // Iterative DFS over (start, len) partitions, mimicking the actual
    // call order of quicksort.
    let mut stack = vec![(0u64, footprint)];
    while let Some((start, len)) = stack.pop() {
        if len < 32 {
            continue;
        }
        phases.push(Box::new(
            SimpleStream::new(pid, (HEAP_BASE + start).into(), 1, len)
                .with_lines(SCAN_LINES)
                .with_think(ADD_THINK_NS),
        ));
        let left = len / 2;
        // Push right first so the left half is scanned next (DFS order).
        stack.push((start + left, len - left));
        stack.push((start, left));
    }
    Box::new(Chain::new(phases))
}

/// High Performance Linpack: blocked LU factorization over an
/// `n x n`-page matrix. Each panel step scans the panel column block,
/// then the trailing-matrix update walks every row's block — the
/// canonical *ladder* footprint of Figure 2 (tread = pages within a
/// row-block, rise = jump to the next row). A final full sweep models
/// the back-substitution.
pub fn hpl(pid: Pid, footprint: u64, _seed: u64) -> Box<dyn AccessStream> {
    let n = (footprint as f64).sqrt() as u64;
    let block = 4u64.min(n.saturating_sub(1)).max(2);
    let panels = 3u64;
    let mut phases: Vec<Box<dyn AccessStream>> = Vec::new();
    // Initial read of the whole matrix.
    phases.push(Box::new(
        SimpleStream::new(pid, HEAP_BASE.into(), 1, n * n)
            .with_lines(SCAN_LINES)
            .with_think(ADD_THINK_NS),
    ));
    for k in 0..panels {
        let col0 = (k * block) % (n - block).max(1);
        // Panel: one column block, walked row by row (a stride-1 tread
        // with an immediate rise).
        let panel = LadderStream::new(
            pid,
            (HEAP_BASE + col0).into(),
            &vec![1; (block - 1) as usize],
            (n - block + 1) as i64,
            n,
        )
        .with_lines(SCAN_LINES)
        .with_think(ADD_THINK_NS);
        phases.push(Box::new(panel));
        // Trailing update: the dominant O(n^3) term. For each column
        // block, the update reads two operands whose row-blocks sit half
        // a matrix apart; strict alternation between them produces the
        // periodic cross-stream stride pattern of Figure 2 (no majority
        // stride, but a repeating 2-stride pattern for LSP).
        for cb in 0..4u64 {
            let col = (col0 + cb * block) % (n - block).max(1);
            let ladder_a = LadderStream::new(
                pid,
                (HEAP_BASE + col).into(),
                &vec![1; (block - 1) as usize],
                (n - block + 1) as i64,
                n,
            )
            .with_lines(SCAN_LINES)
            .with_think(ADD_THINK_NS);
            let ladder_b = LadderStream::new(
                pid,
                (HEAP_BASE + (col + n / 2) % (n - block)).into(),
                &vec![1; (block - 1) as usize],
                (n - block + 1) as i64,
                n,
            )
            .with_lines(SCAN_LINES)
            .with_think(ADD_THINK_NS);
            phases.push(Box::new(Interleaver::round_robin(vec![
                Box::new(ladder_a),
                Box::new(ladder_b),
            ])));
        }
    }
    // Back-substitution sweep.
    phases.push(Box::new(
        SimpleStream::new(pid, HEAP_BASE.into(), 1, n * n)
            .with_lines(SCAN_LINES)
            .with_think(ADD_THINK_NS),
    ));
    Box::new(Chain::new(phases))
}

/// The §VI-E microbenchmark: two threads, each reading and adding up
/// all 8-byte words of its 2 GB (scaled: `footprint/2` pages)
/// partition — 512 additions per page. Two passes, as the benchmark
/// loops over the data.
pub fn microbench(pid: Pid, footprint: u64, _seed: u64) -> Box<dyn AccessStream> {
    let half = footprint / 2;
    let threads: Vec<Box<dyn AccessStream>> = (0..2u64)
        .map(|t| {
            let base = HEAP_BASE + t * half;
            let passes: Vec<Box<dyn AccessStream>> = (0..2)
                .map(|_| {
                    Box::new(
                        SimpleStream::new(pid, base.into(), 1, half)
                            .with_lines(SCAN_LINES)
                            .with_think(ADD_THINK_NS),
                    ) as Box<dyn AccessStream>
                })
                .collect();
            Box::new(Chain::new(passes)) as Box<dyn AccessStream>
        })
        .collect();
    Box::new(Interleaver::round_robin(threads))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(mut s: Box<dyn AccessStream>) -> Vec<u64> {
        std::iter::from_fn(|| s.next_access())
            .map(|a| a.vpn.raw() - HEAP_BASE)
            .collect()
    }

    #[test]
    fn kmeans_interleaves_two_halves() {
        let v = pages(kmeans_omp(Pid::new(1), 1_024, 0));
        assert_eq!(v.len(), 3 * 1_024);
        // Round-robin: first two accesses come from the two halves.
        assert_eq!(v[0], 0);
        assert_eq!(v[1], 512);
        assert_eq!(v[2], 1);
    }

    #[test]
    fn quicksort_phases_shrink() {
        let v = pages(quicksort(Pid::new(1), 512, 0));
        // First phase scans the whole array.
        assert_eq!(&v[..512], (0..512).collect::<Vec<_>>().as_slice());
        // Then the left half.
        assert_eq!(&v[512..768], (0..256).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn quicksort_work_is_n_log_n_like() {
        let small = pages(quicksort(Pid::new(1), 512, 0)).len();
        let large = pages(quicksort(Pid::new(1), 2_048, 0)).len();
        // 4x data => a bit more than 4x work (one extra level).
        assert!(large > 4 * small);
        assert!(large < 8 * small);
    }

    #[test]
    fn hpl_produces_ladder_strides() {
        let v = pages(hpl(Pid::new(1), 1_024, 0));
        // After the first panel scan, strides must alternate between
        // small (tread) and large (rise) values.
        let n = 32; // sqrt(1024)
        let tail = &v[(4 * n as usize)..];
        let strides: Vec<i64> = tail.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
        assert!(strides.iter().any(|&s| s.abs() > 8), "has rises");
        assert!(strides.iter().any(|&s| s.abs() <= 2), "has treads");
    }

    #[test]
    fn microbench_covers_everything_twice() {
        let v = pages(microbench(Pid::new(1), 512, 0));
        assert_eq!(v.len(), 2 * 512);
        let mut counts = std::collections::HashMap::new();
        for p in v {
            *counts.entry(p).or_insert(0u32) += 1;
        }
        assert!(counts.values().all(|&c| c == 2));
    }
}
