//! Non-graph Spark workloads: K-means and Bayes.
//!
//! §VI-B: "Spark divides the K-means workload into multiple stages,
//! each stage writes the data into a different memory area … this leads
//! to more stream patterns in Spark applications, and the length of the
//! stream is relatively small, thus the repetitive patterns might stop
//! before HoPP finishes identifying them." The models reproduce that:
//! the heap is divided into stages; each stage's data lives in its own
//! region and is accessed through many short streams, interleaved with
//! GC-like scattered touches of *older* regions.

use hopp_trace::patterns::{AccessStream, Chain, Interleaver, NoiseStream, SimpleStream};
use hopp_types::rng::SplitMix64;
use hopp_types::Pid;

use crate::HEAP_BASE;

const THINK_NS: u32 = 350;

fn staged(
    pid: Pid,
    footprint: u64,
    seed: u64,
    stages: u64,
    streams_per_stage: u64,
    passes: u64,
    gc_weight: u32,
) -> Box<dyn AccessStream> {
    let region = footprint / stages;
    let mut phases: Vec<Box<dyn AccessStream>> = Vec::new();
    for st in 0..stages {
        let base = HEAP_BASE + st * region;
        // The stage's own data: short consecutive streams covering the
        // region in pieces (RDD partitions), iterated `passes` times
        // (e.g. K-means iterations within a stage).
        let piece = region / streams_per_stage;
        let mut rounds: Vec<Box<dyn AccessStream>> = Vec::new();
        for pass in 0..passes {
            // Partitions are not scanned in address order: shuffle them
            // so pieces don't merge into one long stream.
            let mut order: Vec<u64> = (0..streams_per_stage).collect();
            SplitMix64::seed_from_u64(seed.wrapping_add(st * 31 + pass * 7)).shuffle(&mut order);
            let pieces: Vec<Box<dyn AccessStream>> = order
                .into_iter()
                .map(|p| {
                    Box::new(
                        SimpleStream::new(pid, (base + p * piece).into(), 1, piece)
                            .with_lines(40)
                            .with_think(THINK_NS),
                    ) as Box<dyn AccessStream>
                })
                .collect();
            rounds.push(Box::new(Chain::new(pieces)));
        }
        let mut children: Vec<Box<dyn AccessStream>> = vec![Box::new(Chain::new(rounds))];
        let mut weights = vec![4u32];
        // The stage's *input*: the previous stage's RDD output, re-read
        // partition by partition (shuffle reads). This is what faults
        // once the previous region has been pushed to remote memory.
        if st > 0 {
            let prev = base - region;
            let mut order: Vec<u64> = (0..streams_per_stage).collect();
            SplitMix64::seed_from_u64(seed.wrapping_add(st * 131)).shuffle(&mut order);
            let inputs: Vec<Box<dyn AccessStream>> = order
                .into_iter()
                .map(|p| {
                    Box::new(
                        SimpleStream::new(pid, (prev + p * piece).into(), 1, piece)
                            .with_lines(40)
                            .with_think(THINK_NS),
                    ) as Box<dyn AccessStream>
                })
                .collect();
            children.push(Box::new(Chain::new(inputs)));
            weights.push(3);
        }
        // GC / shuffle traffic over everything allocated so far.
        if st > 0 && gc_weight > 0 {
            children.push(Box::new(NoiseStream::new(
                pid,
                HEAP_BASE.into(),
                base.into(),
                region / 2,
                seed.wrapping_add(st),
            )));
            weights.push(gc_weight);
        }
        phases.push(Box::new(Interleaver::weighted(
            children,
            weights,
            seed ^ st,
        )));
    }
    Box::new(Chain::new(phases))
}

/// Spark K-means: 4 stages, fairly long partition streams iterated
/// three times per stage (the K-means iterations), light GC.
pub fn kmeans(pid: Pid, footprint: u64, seed: u64) -> Box<dyn AccessStream> {
    staged(pid, footprint, seed, 4, 8, 3, 1)
}

/// Spark Bayes: more stages, shorter streams, two passes each, heavier
/// shuffle/GC noise.
pub fn bayes(pid: Pid, footprint: u64, seed: u64) -> Box<dyn AccessStream> {
    staged(pid, footprint, seed.wrapping_add(99), 5, 16, 2, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(mut s: Box<dyn AccessStream>) -> Vec<u64> {
        std::iter::from_fn(|| s.next_access())
            .map(|a| a.vpn.raw() - HEAP_BASE)
            .collect()
    }

    #[test]
    fn stages_move_through_regions() {
        let v = pages(kmeans(Pid::new(1), 2_048, 1));
        let region = 512;
        // The first accesses are in stage 0's region; the last stage's
        // region only appears late.
        assert!(v[0] < region);
        let first_stage3 = v.iter().position(|&p| p >= 3 * region).unwrap();
        assert!(first_stage3 > v.len() / 2);
    }

    #[test]
    fn gc_touches_older_regions() {
        let v = pages(bayes(Pid::new(1), 2_048, 1));
        // Find an access to region 0 *after* stage 2 began.
        let stage2_start = v.iter().position(|&p| p >= 2 * 409).unwrap();
        assert!(
            v[stage2_start..].iter().any(|&p| p < 409),
            "old regions are revisited by GC noise"
        );
    }

    #[test]
    fn streams_are_shorter_than_native() {
        // Proxy: the longest run of consecutive stride-1 accesses is
        // bounded by the partition size, far below the footprint.
        let v = pages(kmeans(Pid::new(1), 2_048, 1));
        let mut longest = 0usize;
        let mut run = 1usize;
        for w in v.windows(2) {
            if w[1] as i64 - w[0] as i64 == 1 {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 1;
            }
        }
        assert!(longest < 256, "longest run {longest} should be short");
    }
}
