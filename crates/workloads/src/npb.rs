//! NAS Parallel Benchmark kernels: CG, FT, LU, MG, IS.

use hopp_trace::patterns::{
    AccessStream, Chain, Interleaver, NoiseStream, RippleStream, SimpleStream,
};
use hopp_types::Pid;

use crate::HEAP_BASE;

const THINK_NS: u32 = 400;

/// Observable LLC misses per streaming page touch (see
/// `compute::SCAN_LINES` for the rationale).
const SCAN_LINES: u8 = 40;

/// CG — conjugate gradient: repeated sequential sweeps over the
/// iteration vectors interleaved with sparse, effectively random
/// accesses into the matrix-indexed gather region.
pub fn cg(pid: Pid, footprint: u64, seed: u64) -> Box<dyn AccessStream> {
    let vectors = footprint / 2; // p, q, r, x vectors region
    let gather = footprint - vectors; // A's column-index gathers
    let iters = 3;
    let passes: Vec<Box<dyn AccessStream>> = (0..iters)
        .map(|i| {
            let sweep = SimpleStream::new(pid, HEAP_BASE.into(), 1, vectors)
                .with_lines(SCAN_LINES)
                .with_think(THINK_NS);
            let sparse = NoiseStream::new(
                pid,
                (HEAP_BASE + vectors).into(),
                (HEAP_BASE + vectors + gather).into(),
                vectors / 4,
                seed.wrapping_add(i),
            );
            Box::new(Interleaver::weighted(
                vec![Box::new(sweep), Box::new(sparse)],
                vec![2, 1],
                seed ^ i,
            )) as Box<dyn AccessStream>
        })
        .collect();
    Box::new(Chain::new(passes))
}

/// FT — 3-D FFT: one stride-1 pass per dimension followed by a
/// transposed pass that walks columns (stride = the plane width),
/// which no single-stride window can follow but clustering + majority
/// can.
pub fn ft(pid: Pid, footprint: u64, _seed: u64) -> Box<dyn AccessStream> {
    let n = (footprint as f64).sqrt() as u64; // plane width in pages
    let mut phases: Vec<Box<dyn AccessStream>> = Vec::new();
    // Dimension 1: row-major sweep.
    phases.push(Box::new(
        SimpleStream::new(pid, HEAP_BASE.into(), 1, n * n)
            .with_lines(SCAN_LINES)
            .with_think(THINK_NS),
    ));
    // Dimension 2: column-major sweep — n streams of stride n.
    let columns: Vec<Box<dyn AccessStream>> = (0..n)
        .map(|c| {
            Box::new(
                SimpleStream::new(pid, (HEAP_BASE + c).into(), n as i64, n)
                    .with_lines(SCAN_LINES)
                    .with_think(THINK_NS),
            ) as Box<dyn AccessStream>
        })
        .collect();
    phases.push(Box::new(Chain::new(columns)));
    // Inverse transform: row-major again.
    phases.push(Box::new(
        SimpleStream::new(pid, HEAP_BASE.into(), 1, n * n)
            .with_lines(SCAN_LINES)
            .with_think(THINK_NS),
    ));
    Box::new(Chain::new(phases))
}

/// LU — wavefront factorization: several aligned stride-1 streams move
/// through the grid together (one per pipeline stage), plus a
/// boundary-exchange stream.
pub fn lu(pid: Pid, footprint: u64, _seed: u64) -> Box<dyn AccessStream> {
    let lanes = 4u64;
    let lane_len = footprint / lanes;
    let streams: Vec<Box<dyn AccessStream>> = (0..lanes)
        .map(|l| {
            Box::new(
                SimpleStream::new(pid, (HEAP_BASE + l * lane_len).into(), 1, lane_len)
                    .with_lines(SCAN_LINES)
                    .with_think(THINK_NS),
            ) as Box<dyn AccessStream>
        })
        .collect();
    let sweep = Interleaver::round_robin(streams);
    // Second sweep (back-substitution) in reverse order.
    let back: Vec<Box<dyn AccessStream>> = (0..lanes)
        .map(|l| {
            Box::new(
                SimpleStream::new(
                    pid,
                    (HEAP_BASE + (l + 1) * lane_len - 1).into(),
                    -1,
                    lane_len,
                )
                .with_lines(SCAN_LINES)
                .with_think(THINK_NS),
            ) as Box<dyn AccessStream>
        })
        .collect();
    Box::new(Chain::new(vec![
        Box::new(sweep),
        Box::new(Interleaver::round_robin(back)),
    ]))
}

/// MG — multigrid V-cycle: ripple streams (stride-1 with out-of-order
/// stencil accesses) over grids of halving size on the way down and
/// doubling size on the way up. The paper calls out NPB-MG as the
/// ripple-stream example (§II-B, Fig 3).
pub fn mg(pid: Pid, footprint: u64, seed: u64) -> Box<dyn AccessStream> {
    let mut phases: Vec<Box<dyn AccessStream>> = Vec::new();
    // Finest grid takes half the footprint; each coarser level is a
    // quarter of the previous, packed after it, so all levels fit.
    let mut level_sizes = Vec::new();
    let mut size = footprint / 2;
    while size >= 64 {
        level_sizes.push(size);
        size /= 4;
    }
    let mut offsets = Vec::new();
    let mut off = 0u64;
    for &s in &level_sizes {
        offsets.push(off);
        off += s;
    }
    debug_assert!(off <= footprint);
    // Boundary-exchange buffer: the across-stream hop target that makes
    // these ripple streams (irregular hops defeat pattern matching and
    // leave RSP as the only tier that can follow them, §II-B).
    let exchange = HEAP_BASE + footprint - 64;
    let down = level_sizes.iter().zip(&offsets);
    let up = level_sizes.iter().zip(&offsets).rev().skip(1);
    for (i, (&s, &o)) in down.chain(up).enumerate() {
        phases.push(Box::new(
            RippleStream::new(
                pid,
                (HEAP_BASE + o).into(),
                s,
                0.35,
                6,
                seed.wrapping_add(i as u64),
            )
            .with_hop_base(exchange.into())
            .with_lines(SCAN_LINES)
            .with_think(THINK_NS),
        ));
    }
    Box::new(Chain::new(phases))
}

/// IS — integer sort: a sequential scan of the key array interleaved
/// with random accesses into the bucket/histogram region, then a
/// permuted write-out pass (modelled as another noisy region pass).
pub fn is(pid: Pid, footprint: u64, seed: u64) -> Box<dyn AccessStream> {
    let keys = footprint * 3 / 4;
    let _buckets = footprint - keys;
    let count_pass = Interleaver::weighted(
        vec![
            Box::new(
                SimpleStream::new(pid, HEAP_BASE.into(), 1, keys)
                    .with_lines(SCAN_LINES)
                    .with_think(THINK_NS),
            ),
            Box::new(NoiseStream::new(
                pid,
                (HEAP_BASE + keys).into(),
                (HEAP_BASE + footprint).into(),
                keys / 2,
                seed,
            )),
        ],
        vec![2, 1],
        seed,
    );
    let rank_pass = Interleaver::weighted(
        vec![
            Box::new(
                SimpleStream::new(pid, HEAP_BASE.into(), 1, keys)
                    .with_lines(SCAN_LINES)
                    .with_think(THINK_NS),
            ),
            Box::new(NoiseStream::new(
                pid,
                (HEAP_BASE + keys).into(),
                (HEAP_BASE + footprint).into(),
                keys / 4,
                seed ^ 0xdead,
            )),
        ],
        vec![3, 1],
        seed ^ 1,
    );
    Box::new(Chain::new(vec![Box::new(count_pass), Box::new(rank_pass)]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(mut s: Box<dyn AccessStream>) -> Vec<u64> {
        std::iter::from_fn(|| s.next_access())
            .map(|a| a.vpn.raw() - HEAP_BASE)
            .collect()
    }

    #[test]
    fn ft_has_a_column_phase() {
        let v = pages(ft(Pid::new(1), 1_024, 0));
        let n = 32u64;
        // The middle third contains stride-n jumps.
        let mid = &v[(n * n) as usize..(2 * n * n) as usize];
        let stride_n = mid
            .windows(2)
            .filter(|w| w[1] as i64 - w[0] as i64 == n as i64)
            .count();
        assert!(stride_n > mid.len() / 2);
    }

    #[test]
    fn lu_interleaves_lanes_both_ways() {
        let v = pages(lu(Pid::new(1), 1_024, 0));
        assert_eq!(v.len(), 2 * 1_024);
        // Forward sweep starts at each lane's base.
        assert_eq!(&v[..4], &[0, 256, 512, 768]);
        // Backward sweep starts at each lane's top.
        assert_eq!(&v[1_024..1_028], &[255, 511, 767, 1_023]);
    }

    #[test]
    fn mg_walks_a_v_cycle() {
        let v = pages(mg(Pid::new(1), 4_096, 3));
        // Levels: 2048, 512, 128 (down), then 512, 2048 (up), plus one
        // exchange-buffer hop per 6 accesses.
        let grid = 2_048 + 512 + 128 + 512 + 2_048;
        assert!(v.len() as u64 >= grid && v.len() as u64 <= grid + grid / 5 + 5);
        // Across-stream hops land in the 64-page exchange buffer.
        assert!(v.iter().any(|&p| p >= 4_096 - 64));
        // Everything stays inside the footprint.
        assert!(v.iter().all(|&p| p < 4_096));
        // Every grid page of every level is still covered.
        let distinct: std::collections::HashSet<u64> =
            v.iter().copied().filter(|&p| p < 2_688).collect();
        assert_eq!(distinct.len() as u64, 2_688);
    }

    #[test]
    fn cg_mixes_sweep_and_gather() {
        let v = pages(cg(Pid::new(1), 1_024, 9));
        let sweep = v.iter().filter(|&&p| p < 512).count();
        let gather = v.iter().filter(|&&p| p >= 512).count();
        assert!(sweep > 0 && gather > 0);
        assert!(sweep > gather, "the sweep dominates");
    }

    #[test]
    fn is_touches_keys_and_buckets() {
        let v = pages(is(Pid::new(1), 1_024, 5));
        assert!(v.iter().any(|&p| p < 768));
        assert!(v.iter().any(|&p| p >= 768));
    }
}
