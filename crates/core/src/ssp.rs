//! Simple-Stream-based Prefetch (SSP) — §III-D(2) of the paper.
//!
//! A stride is *dominant* in a `stride_history` when one value occurs at
//! least `L/2` times. Simple streams (fixed-stride scans) cover the
//! majority of stream patterns in the studied applications (§VI-D), so
//! SSP runs first and the other tiers only see windows it rejects.

use crate::stt::StreamWindow;

/// Returns the dominant stride of the window, if one exists.
///
/// Zero strides never dominate: a "stream" that stays on one page needs
/// no prefetching (and the STT dedupes exact repeats anyway).
///
/// # Example
///
/// ```
/// use hopp_core::ssp;
/// use hopp_core::stt::{StreamTrainingTable, SttConfig};
/// use hopp_types::{HotPage, Nanos, PageFlags, Pid, Vpn};
///
/// let mut stt = StreamTrainingTable::new(SttConfig { history: 4, ..Default::default() })?;
/// let mut window = None;
/// for v in [10u64, 13, 16, 19] {
///     let hot = HotPage { pid: Pid::new(1), vpn: Vpn::new(v),
///                         flags: PageFlags::default(), at: Nanos::ZERO };
///     window = stt.observe(&hot).or(window);
/// }
/// assert_eq!(ssp::dominant_stride(&window.unwrap()), Some(3));
/// # Ok::<(), hopp_types::Error>(())
/// ```
pub fn dominant_stride(window: &StreamWindow) -> Option<i64> {
    let l = window.len();
    let strides = &window.stride_history;
    debug_assert_eq!(strides.len(), l - 1);
    let threshold = l / 2;

    // L is small (16): a quadratic count beats allocating a map.
    for (i, &candidate) in strides.iter().enumerate() {
        if candidate == 0 {
            continue;
        }
        // Only count each candidate once (at its first occurrence).
        if strides[..i].contains(&candidate) {
            continue;
        }
        let count = strides.iter().filter(|&&s| s == candidate).count();
        if count >= threshold {
            return Some(candidate);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stt::StreamId;
    use hopp_types::{Nanos, Pid, Vpn};

    fn window(strides: &[i64]) -> StreamWindow {
        let mut vpns = vec![Vpn::new(1_000)];
        for &s in strides {
            let last = *vpns.last().unwrap();
            vpns.push(last.offset(s).unwrap());
        }
        StreamWindow {
            stream: StreamId {
                slot: 0,
                generation: 0,
            },
            pid: Pid::new(1),
            vpn_history: vpns,
            stride_history: strides.to_vec(),
            at: Nanos::ZERO,
        }
    }

    #[test]
    fn uniform_stride_dominates() {
        assert_eq!(dominant_stride(&window(&[2; 15])), Some(2));
        assert_eq!(dominant_stride(&window(&[-4; 15])), Some(-4));
    }

    #[test]
    fn majority_with_interference() {
        // 8 of 15 strides are 3 (>= L/2 = 8), the rest are noise.
        let strides = [3, 7, 3, -1, 3, 3, 9, 3, 3, 2, 3, 5, 3, 11, 4];
        assert_eq!(dominant_stride(&window(&strides)), Some(3));
    }

    #[test]
    fn below_threshold_fails() {
        // 7 of 15 occurrences: one short of L/2 = 8.
        let strides = [3, 7, 3, -1, 3, 3, 9, 3, 1, 2, 3, 5, 3, 11, 4];
        assert_eq!(dominant_stride(&window(&strides)), None);
    }

    #[test]
    fn zero_stride_never_dominates() {
        assert_eq!(dominant_stride(&window(&[0; 15])), None);
    }

    #[test]
    fn alternating_strides_fail() {
        // A two-stride ladder: SSP must reject it so LSP gets a chance.
        let strides = [2, 12, 2, 12, 2, 12, 2, 12, 2, 12, 2, 12, 2, 12, 2];
        assert_eq!(dominant_stride(&window(&strides)), Some(2));
        // With window 16, "2" occurs 8 times == L/2, so SSP *does*
        // claim it; likewise three tread strides per rise ("2" occurs
        // 10 >= 8 times):
        let strides = [2, 2, 12, 2, 2, 12, 2, 2, 12, 2, 2, 12, 2, 2, 12];
        assert_eq!(dominant_stride(&window(&strides)), Some(2));
        // A ladder whose rise appears as often as its tread is what
        // defeats SSP and needs LSP:
        let strides = [2, 12, 7, 2, 12, 7, 2, 12, 7, 2, 12, 7, 2, 12, 7];
        assert_eq!(dominant_stride(&window(&strides)), None);
    }
}
