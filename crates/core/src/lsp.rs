//! Ladder-Stream-based Prefetch (LSP) — Algorithm 1 of the paper.
//!
//! Ladder streams (Figure 2) have a repetitive spatial pattern: a
//! series of concentrated accesses across streams (the *ladder tread*)
//! followed by a larger, stable stride (the *ladder rise*). LSP checks
//! whether the newest `M = 2` strides (the `pattern_target`) repeat
//! earlier in the stride history. If so, the stream's future follows the
//! spatial correlation between repetitions: the next stride of the
//! target pattern (`stride_target`) and the page distance between
//! pattern repetitions (`pattern_stride`) are taken as the majority
//! over the observed candidates.
//!
//! Worked example (paper's Figure 2, accesses `a1..a11`): on receiving
//! `a11` the pattern target is the strides `{a10→a11, a9→a10}`.
//! Candidates matched in history are `{a5→a6, a6→a7}` and
//! `{a1→a2, a2→a3}`; their next strides (`a7→a8`, `a3→a4`) vote for
//! `stride_target`, and the distances between repetition anchor points
//! (`a11−a7`, `a7−a3`) vote for `pattern_stride`. The page prefetched is
//! `VPN_A + stride_target + i × pattern_stride`.

use crate::stt::StreamWindow;

/// LSP's output: the two strides that place the prediction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LadderPrediction {
    /// The next stride of the target pattern.
    pub stride_target: i64,
    /// The page distance between successive pattern repetitions.
    pub pattern_stride: i64,
}

/// Most frequent value; ties go to the first-seen (which, with the
/// tail-first scan order used below, is the most recent candidate).
fn majority(values: &[i64]) -> Option<i64> {
    let mut best: Option<(i64, usize)> = None;
    for (i, &v) in values.iter().enumerate() {
        if values[..i].contains(&v) {
            continue;
        }
        let count = values.iter().filter(|&&x| x == v).count();
        if best.is_none_or(|(_, c)| count > c) {
            best = Some((v, count));
        }
    }
    best.map(|(v, _)| v)
}

/// Runs Algorithm 1 on a training window.
///
/// Returns `None` when the newest 2-stride pattern has no earlier
/// repetition in the window (lines 14–15 of the algorithm: both output
/// strides zero means "no ladder found").
pub fn predict(window: &StreamWindow) -> Option<LadderPrediction> {
    let strides = &window.stride_history;
    let vpns = &window.vpn_history;
    let n = strides.len(); // == L - 1
    if n < 4 {
        return None;
    }

    // pattern_target: the last two strides, (strides[n-2], strides[n-1]).
    let pattern = (strides[n - 2], strides[n - 1]);

    let mut next_stride = Vec::new();
    let mut stride_sum = Vec::new();
    // The anchor of the target pattern is its last page: VPN_A, at
    // vpns[n] (== vpns[L-1]).
    let mut last_anchor = n;

    // Scan from the tail so repetition distances chain backwards
    // (a11-a7, then a7-a3, as in the worked example). A candidate at i
    // covers strides (i, i+1) and needs a next stride at i+2, which must
    // be strictly older than the target's own strides.
    let mut i = n as i64 - 4;
    while i >= 0 {
        let idx = i as usize;
        if (strides[idx], strides[idx + 1]) == pattern {
            next_stride.push(strides[idx + 2]);
            // Candidate anchor: last page of the candidate pattern.
            let anchor = idx + 2;
            stride_sum.push(vpns[last_anchor].stride_from(vpns[anchor]));
            last_anchor = anchor;
            // A pattern occurrence consumes its two strides; step past
            // it so overlapping self-matches don't double count.
            i -= 2;
        } else {
            i -= 1;
        }
    }

    if next_stride.is_empty() {
        return None;
    }
    Some(LadderPrediction {
        stride_target: majority(&next_stride)?,
        pattern_stride: majority(&stride_sum)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stt::{StreamId, StreamWindow};
    use hopp_types::{Nanos, Pid, Vpn};

    fn window_from_vpns(vpns: &[u64]) -> StreamWindow {
        let vpn_history: Vec<Vpn> = vpns.iter().map(|&v| Vpn::new(v)).collect();
        let stride_history: Vec<i64> = vpn_history
            .windows(2)
            .map(|w| w[1].stride_from(w[0]))
            .collect();
        StreamWindow {
            stream: StreamId {
                slot: 0,
                generation: 0,
            },
            pid: Pid::new(1),
            vpn_history,
            stride_history,
            at: Nanos::ZERO,
        }
    }

    /// The paper's Figure 2: treads of stride 2 (a1,a2,a3,a4), then a
    /// rise. Pages: 0,2,4,6 then 18,20,22,24 then 36,38,40,42 ...
    fn figure2_vpns(rungs: usize) -> Vec<u64> {
        let mut v = Vec::new();
        for r in 0..rungs {
            let base = 18 * r as u64;
            for k in 0..4 {
                v.push(base + 2 * k);
            }
        }
        v
    }

    #[test]
    fn detects_figure_2_ladder() {
        // Window of the last 13 accesses of 4 rungs: ends mid-tread so
        // the newest 2 strides are (2, 2), repeated in earlier rungs.
        let vpns = figure2_vpns(4);
        let w = window_from_vpns(&vpns[vpns.len() - 13..]);
        let p = predict(&w).expect("ladder found");
        // The window ends on a rung's last page, so the candidates'
        // next stride is the *rise* (12); repetitions are 18 apart.
        assert_eq!(p.stride_target, 12);
        assert_eq!(p.pattern_stride, 18);
    }

    #[test]
    fn detects_rise_position() {
        // End the window right at a rung boundary: newest strides
        // (2, 12) with treads [2,2,2] and rise 12.
        // Pages per rung: b, b+2, b+4, b+6; rise to b+18.
        let mut vpns = Vec::new();
        for r in 0..4u64 {
            for k in 0..4u64 {
                vpns.push(18 * r + 2 * k);
            }
        }
        vpns.push(18 * 4); // first page of the next rung
        let w = window_from_vpns(&vpns[vpns.len() - 14..]);
        assert_eq!(w.stride_a(), 12);
        let p = predict(&w).expect("ladder found");
        // After a (2, 12) pair the tread restarts: next stride is 2, and
        // the repetition distance is one rung (18 pages).
        assert_eq!(p.stride_target, 2);
        assert_eq!(p.pattern_stride, 18);
    }

    #[test]
    fn no_repetition_means_none() {
        // Monotone distinct strides: the newest pair never repeats.
        let w = window_from_vpns(&[0, 1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 66, 78, 91, 105, 120]);
        assert_eq!(predict(&w), None);
    }

    #[test]
    fn short_window_is_rejected() {
        let w = window_from_vpns(&[0, 2, 4, 6]);
        assert_eq!(predict(&w), None);
    }

    #[test]
    fn majority_vote_survives_one_distorted_rung() {
        // Four clean rungs + one rung with a distorted tread. The
        // distorted rung offers no pattern match, so the repetition
        // chain skips it (one 36-page gap), but the majority vote still
        // recovers the true rung distance of 18.
        let vpns: Vec<u64> = vec![
            0, 2, 4, 6, // rung 0
            18, 20, 22, 24, // rung 1
            36, 38, 41, 42, // rung 2 (distorted: strides 2, 3, 1)
            54, 56, 58, 60, // rung 3
            72, 74, 76, 78, // rung 4
        ];
        let w = window_from_vpns(&vpns);
        let p = predict(&w).expect("ladder found");
        assert_eq!(p.stride_target, 12, "next comes the rise");
        assert_eq!(p.pattern_stride, 18, "majority beats the 36 gap");
    }

    #[test]
    fn majority_helper() {
        assert_eq!(majority(&[]), None);
        assert_eq!(majority(&[5]), Some(5));
        assert_eq!(majority(&[1, 2, 2, 3]), Some(2));
        // Tie: first-seen wins.
        assert_eq!(majority(&[7, 9, 7, 9]), Some(7));
    }

    #[test]
    fn vote_ties_resolve_to_the_most_recent_candidate() {
        // Two repetitions of the (2, 2) target whose continuations
        // disagree (7 vs 5) and whose repetition distances disagree
        // (12 vs 10): one vote each. The tail-first scan pushes the
        // newer candidate first, and `majority` keeps the first-seen
        // value on ties, so the prediction follows the *recent* ladder
        // geometry, not the stale one.
        // Strides: [2,2,5, 1, 2,2,7, 1, 2,2] — target (2,2).
        let w = window_from_vpns(&[0, 2, 4, 9, 10, 12, 14, 21, 22, 24, 26]);
        let p = predict(&w).expect("ladder found");
        assert_eq!(p.stride_target, 7, "newest continuation wins the tie");
        assert_eq!(p.pattern_stride, 12, "newest repetition distance wins");
    }

    #[test]
    fn minimal_window_with_one_repetition_predicts() {
        // Four strides is the floor (`n < 4` rejects): the single
        // candidate at the window head is the only vote, and its
        // continuation is the target's own first stride — the ladder
        // degenerates to a plain stride-2 stream, correctly predicted.
        let w = window_from_vpns(&[0, 2, 4, 6, 8]);
        assert_eq!(
            predict(&w),
            Some(LadderPrediction {
                stride_target: 2,
                pattern_stride: 4,
            })
        );
    }

    #[test]
    fn target_without_a_full_earlier_repetition_is_rejected() {
        // Window is long enough (n = 4) but the history before the
        // target holds only fragments — never the full (2, 2) pair —
        // so Algorithm 1 must decline rather than vote on thin air.
        let w = window_from_vpns(&[0, 1, 4, 6, 8]); // strides [1,3,2,2]
        assert_eq!(predict(&w), None);
    }

    #[test]
    fn descending_ladder_predicts_negative_strides() {
        // A ladder walked downwards: treads of stride -2, rises of -12,
        // rungs 18 pages apart in the negative direction. Both output
        // strides must come back negative.
        let w = window_from_vpns(&[100, 98, 96, 94, 82, 80, 78, 76, 64, 62, 60, 58]);
        let p = predict(&w).expect("descending ladder found");
        assert_eq!(p.stride_target, -12);
        assert_eq!(p.pattern_stride, -18);
    }

    #[test]
    fn zigzag_pattern_with_sign_flips_inside_the_tread_is_tracked() {
        // The stride alternates sign every access (+3, -1, +3, -1, …):
        // the pattern target itself contains a sign flip. Repetitions
        // overlap-free every 2 strides; the stream advances 2 pages per
        // repetition.
        let w = window_from_vpns(&[0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10]);
        let p = predict(&w).expect("zigzag found");
        assert_eq!(p.stride_target, 3);
        assert_eq!(p.pattern_stride, 2);
    }

    #[test]
    fn direction_flip_mid_stream_invalidates_the_old_ladder() {
        // An ascending rung, then the stream reverses. The newest pair
        // (-2, -2) has no repetition in the ascending history, so the
        // stale ascending geometry must not produce a prediction.
        let w = window_from_vpns(&[0, 2, 4, 16, 18, 20, 18, 16]);
        assert_eq!(predict(&w), None);
    }
}
