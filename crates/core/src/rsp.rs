//! Ripple-Stream-based Prefetch (RSP) — Algorithm 2 of the paper.
//!
//! Ripple streams (Figure 3) are stride-1 streams distorted by
//! out-of-order and across-stream accesses. The insight: if a hot page
//! belongs to a ripple stream, then even when the history hops away,
//! some later access returns, making the *cumulative* stride from the
//! new page small again. RSP walks the stride history backwards,
//! accumulating strides; each time the absolute accumulated stride
//! falls within `max_stride` (default 2, tolerating two out-of-order
//! accesses) it counts a *ripple page* and resets the accumulator. When
//! at least `L/2` ripple pages are found, the page belongs to a ripple
//! stream and the predicted stride is 1.

use crate::stt::StreamWindow;

/// The out-of-order tolerance (the paper's `max_stride`).
pub const MAX_STRIDE: i64 = 2;

/// Runs Algorithm 2 on a training window with the given tolerance.
///
/// Returns `true` when the window's newest page belongs to a ripple
/// stream (predicted stride 1).
pub fn is_ripple_with(window: &StreamWindow, max_stride: i64) -> bool {
    let strides = &window.stride_history;
    let l = window.len();
    let mut ripple_num = 0usize;

    // The newest stride is checked directly (line 2 of the algorithm)...
    if window.stride_a().abs() <= max_stride {
        ripple_num += 1;
    }
    // ...then strides accumulate backwards from the newest page; every
    // return to within max_stride marks a ripple page (lines 5-9).
    let mut accumulate: i64 = 0;
    for &s in strides.iter().rev().skip(1) {
        accumulate += s;
        if accumulate.abs() <= max_stride {
            ripple_num += 1;
            accumulate = 0;
        }
    }

    ripple_num >= l / 2
}

/// Runs Algorithm 2 with the paper's default `max_stride = 2`.
pub fn is_ripple(window: &StreamWindow) -> bool {
    is_ripple_with(window, MAX_STRIDE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stt::{StreamId, StreamWindow};
    use hopp_types::{Nanos, Pid, Vpn};

    fn window_from_vpns(vpns: &[u64]) -> StreamWindow {
        let vpn_history: Vec<Vpn> = vpns.iter().map(|&v| Vpn::new(v)).collect();
        let stride_history: Vec<i64> = vpn_history
            .windows(2)
            .map(|w| w[1].stride_from(w[0]))
            .collect();
        StreamWindow {
            stream: StreamId {
                slot: 0,
                generation: 0,
            },
            pid: Pid::new(1),
            vpn_history,
            stride_history,
            at: Nanos::ZERO,
        }
    }

    #[test]
    fn clean_stride_1_is_a_ripple() {
        let vpns: Vec<u64> = (100..116).collect();
        assert!(is_ripple(&window_from_vpns(&vpns)));
    }

    #[test]
    fn out_of_order_scan_is_a_ripple() {
        // Stride-1 scan with adjacent swaps (the paper's Figure 3 shape).
        let vpns = [
            100, 102, 101, 103, 105, 104, 106, 107, 109, 108, 110, 111, 113, 112, 114, 115,
        ];
        assert!(is_ripple(&window_from_vpns(&vpns)));
    }

    #[test]
    fn hops_that_return_are_tolerated() {
        // Occasional far hops; the cumulative stride returns to ~0.
        let vpns = [
            100, 101, 5000, 102, 103, 104, 9000, 105, 106, 107, 108, 7000, 109, 110, 111, 112,
        ];
        assert!(is_ripple(&window_from_vpns(&vpns)));
    }

    #[test]
    fn random_accesses_are_not_a_ripple() {
        let vpns = [
            100, 900, 40, 7000, 3, 650, 12000, 88, 4100, 77, 950, 31, 8000, 210, 5, 666,
        ];
        assert!(!is_ripple(&window_from_vpns(&vpns)));
    }

    #[test]
    fn large_stride_stream_is_not_a_ripple() {
        // A clean stride-10 simple stream: SSP's job, not RSP's.
        let vpns: Vec<u64> = (0..16).map(|k| 100 + 10 * k).collect();
        assert!(!is_ripple(&window_from_vpns(&vpns)));
    }

    #[test]
    fn tolerance_is_configurable() {
        // Stride-3 stream: not a ripple at max_stride=2, is at 3.
        let vpns: Vec<u64> = (0..16).map(|k| 100 + 3 * k).collect();
        let w = window_from_vpns(&vpns);
        assert!(!is_ripple_with(&w, 2));
        assert!(is_ripple_with(&w, 3));
    }

    #[test]
    fn ladder_is_not_a_ripple() {
        // Figure 2's ladder: treads are close but rises accumulate.
        let mut vpns = Vec::new();
        for r in 0..4u64 {
            for k in 0..4u64 {
                vpns.push(18 * r + 2 * k);
            }
        }
        assert!(!is_ripple(&window_from_vpns(&vpns)));
    }
}
