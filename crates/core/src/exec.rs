//! The prefetch execution engine — §III-F of the paper.
//!
//! The execution engine accepts orders from the policy engine, checks
//! for duplicates, reads the pages from the remote node over RDMA
//! *asynchronously* (the separate data path), and reports completions
//! so the kernel side can inject PTEs immediately — turning would-be
//! prefetch-hits into plain DRAM hits.
//!
//! Whether a prefetched page is eventually hit is *not* observed here:
//! the memory trace tells HoPP that (the page shows up hot again), which
//! is how early injection keeps the accuracy/coverage feedback loop
//! alive that Depth-N loses (§II-C).

use hopp_ds::DetMap;
use hopp_fabric::RemotePool;
use hopp_net::CompletionQueue;
use hopp_obs::{Event, NopRecorder, Recorder};
use hopp_types::{Nanos, Pid, Result, Vpn};

use crate::stt::StreamId;
use crate::three_tier::Tier;

/// A finished prefetch, ready for PTE injection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Completion {
    /// Owning process.
    pub pid: Pid,
    /// The first fetched page.
    pub vpn: Vpn,
    /// Consecutive pages fetched by this request (1 except for
    /// huge-page batches, §IV).
    pub span: u32,
    /// Stream that requested it (routes timeliness feedback).
    pub stream: StreamId,
    /// Tier that predicted it (per-tier metrics).
    pub tier: Tier,
    /// When the RDMA read was issued.
    pub issued_at: Nanos,
    /// When the data arrived.
    pub done_at: Nanos,
}

/// Execution-engine counters.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct ExecStats {
    /// RDMA reads issued.
    pub issued: u64,
    /// Orders dropped because the page was already in flight.
    pub duplicate_inflight: u64,
    /// Completions delivered.
    pub completed: u64,
}

/// The execution engine.
///
/// The engine does not know which pages are already resident — the
/// caller (who owns the page tables) filters those before calling
/// [`ExecutionEngine::request`]. The engine's own dedupe covers the
/// in-flight window, where the page tables can't help.
#[derive(Clone, Debug, Default)]
pub struct ExecutionEngine {
    inflight: DetMap<(Pid, Vpn), (StreamId, Tier, Nanos, u32)>,
    cq: CompletionQueue<(Pid, Vpn)>,
    stats: ExecStats,
}

impl ExecutionEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues an asynchronous page read, unless the page is already in
    /// flight. Returns the read's completion time if one was issued.
    ///
    /// # Errors
    ///
    /// Propagates the pool's read failure (every replica of the page
    /// lost); see [`RemotePool::read_span`].
    pub fn request(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        stream: StreamId,
        tier: Tier,
        now: Nanos,
        pool: &mut dyn RemotePool,
    ) -> Result<Option<Nanos>> {
        self.request_span(pid, vpn, 1, stream, tier, now, pool)
    }

    /// Issues one RDMA read covering `span` consecutive pages (the §IV
    /// huge-page batch path: one request, one completion, `span` PTE
    /// injections). Returns the completion time if issued.
    ///
    /// # Errors
    ///
    /// Propagates the pool's read failure; see [`RemotePool::read_span`].
    #[allow(clippy::too_many_arguments)]
    pub fn request_span(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        span: u32,
        stream: StreamId,
        tier: Tier,
        now: Nanos,
        pool: &mut dyn RemotePool,
    ) -> Result<Option<Nanos>> {
        self.request_span_rec(pid, vpn, span, stream, tier, now, pool, &mut NopRecorder)
    }

    /// [`ExecutionEngine::request_span`], recording the RDMA read and an
    /// [`Event::PrefetchIssued`] whose latency is the expected
    /// issue-to-arrival time.
    ///
    /// # Errors
    ///
    /// Propagates the pool's read failure; see [`RemotePool::read_span`].
    #[allow(clippy::too_many_arguments)]
    pub fn request_span_rec(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        span: u32,
        stream: StreamId,
        tier: Tier,
        now: Nanos,
        pool: &mut dyn RemotePool,
        rec: &mut dyn Recorder,
    ) -> Result<Option<Nanos>> {
        let _prof = hopp_prof::span("core/exec");
        debug_assert!(span >= 1);
        if self.inflight.contains_key(&(pid, vpn)) {
            self.stats.duplicate_inflight += 1;
            return Ok(None);
        }
        let done = pool.read_span(pid, vpn, span, now, rec)?;
        self.inflight.insert((pid, vpn), (stream, tier, now, span));
        self.cq.push(done, (pid, vpn));
        self.stats.issued += 1;
        if rec.is_enabled() {
            rec.record(
                done,
                Event::PrefetchIssued {
                    pid,
                    vpn,
                    span,
                    latency: done.saturating_since(now),
                },
            );
        }
        Ok(Some(done))
    }

    /// True if a read for the page is in flight.
    pub fn is_inflight(&self, pid: Pid, vpn: Vpn) -> bool {
        self.inflight.contains_key(&(pid, vpn))
    }

    /// Number of reads in flight.
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }

    /// Completion time of the next read to finish, if any.
    pub fn next_completion_at(&self) -> Option<Nanos> {
        self.cq.next_due()
    }

    /// Drains all reads that have completed by `now`, oldest first.
    ///
    /// Allocates a fresh `Vec` per call; hot paths should prefer
    /// [`ExecutionEngine::poll_into`] with a reused buffer.
    pub fn poll(&mut self, now: Nanos) -> Vec<Completion> {
        let mut done = Vec::new();
        self.poll_into(now, &mut done);
        done
    }

    /// [`ExecutionEngine::poll`] appending into a caller-owned buffer
    /// (which is *not* cleared first), so steady-state polling reuses
    /// capacity instead of allocating per tick. Returns the number of
    /// completions appended.
    pub fn poll_into(&mut self, now: Nanos, done: &mut Vec<Completion>) -> usize {
        let before = done.len();
        while let Some((done_at, (pid, vpn))) = self.cq.pop_due(now) {
            let (stream, tier, issued_at, span) = self
                .inflight
                .remove(&(pid, vpn))
                // hopp-check: allow(panic-policy): every queued completion was inserted with an inflight record two lines apart; violation is a checker bug, not a run condition
                .expect("completion for unknown in-flight read");
            self.stats.completed += 1;
            done.push(Completion {
                pid,
                vpn,
                span,
                stream,
                tier,
                issued_at,
                done_at,
            });
        }
        done.len() - before
    }

    /// Counters.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopp_net::{RdmaConfig, RdmaEngine};

    fn stream_id() -> StreamId {
        let mut stt = crate::stt::StreamTrainingTable::new(crate::stt::SttConfig {
            history: 4,
            ..Default::default()
        })
        .unwrap();
        let mut last = None;
        for k in 0..4u64 {
            last = stt.observe(&hopp_types::HotPage {
                pid: Pid::new(1),
                vpn: Vpn::new(k),
                flags: hopp_types::PageFlags::default(),
                at: Nanos::ZERO,
            });
        }
        last.unwrap().stream
    }

    #[test]
    fn request_poll_roundtrip() {
        let mut exec = ExecutionEngine::new();
        let mut link = RdmaEngine::new(RdmaConfig::default());
        let s = stream_id();
        assert!(exec
            .request(
                Pid::new(1),
                Vpn::new(9),
                s,
                Tier::Simple,
                Nanos::ZERO,
                &mut link
            )
            .unwrap()
            .is_some());
        assert!(exec.is_inflight(Pid::new(1), Vpn::new(9)));
        assert!(exec.poll(Nanos::from_micros(1)).is_empty(), "not done yet");
        let done = exec.poll(Nanos::from_micros(10));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].vpn, Vpn::new(9));
        assert_eq!(done[0].issued_at, Nanos::ZERO);
        assert!(done[0].done_at > Nanos::ZERO);
        assert!(!exec.is_inflight(Pid::new(1), Vpn::new(9)));
        assert_eq!(exec.stats().completed, 1);
    }

    #[test]
    fn duplicate_inflight_is_dropped() {
        let mut exec = ExecutionEngine::new();
        let mut link = RdmaEngine::new(RdmaConfig::default());
        let s = stream_id();
        assert!(exec
            .request(
                Pid::new(1),
                Vpn::new(9),
                s,
                Tier::Simple,
                Nanos::ZERO,
                &mut link
            )
            .unwrap()
            .is_some());
        assert!(exec
            .request(
                Pid::new(1),
                Vpn::new(9),
                s,
                Tier::Simple,
                Nanos::ZERO,
                &mut link
            )
            .unwrap()
            .is_none());
        assert_eq!(exec.stats().duplicate_inflight, 1);
        assert_eq!(exec.stats().issued, 1);
        assert_eq!(link.stats().reads, 1, "no duplicate RDMA read");
    }

    #[test]
    fn after_completion_the_page_may_be_refetched() {
        let mut exec = ExecutionEngine::new();
        let mut link = RdmaEngine::new(RdmaConfig::default());
        let s = stream_id();
        exec.request(
            Pid::new(1),
            Vpn::new(9),
            s,
            Tier::Ripple,
            Nanos::ZERO,
            &mut link,
        )
        .unwrap();
        exec.poll(Nanos::from_millis(1));
        // Residency filtering is the caller's job; the engine allows it.
        assert!(exec
            .request(
                Pid::new(1),
                Vpn::new(9),
                s,
                Tier::Ripple,
                Nanos::from_millis(1),
                &mut link
            )
            .unwrap()
            .is_some());
    }

    #[test]
    fn completions_arrive_in_time_order() {
        let mut exec = ExecutionEngine::new();
        let mut link = RdmaEngine::new(RdmaConfig::default());
        let s = stream_id();
        for v in 0..5u64 {
            exec.request(
                Pid::new(1),
                Vpn::new(v),
                s,
                Tier::Simple,
                Nanos::ZERO,
                &mut link,
            )
            .unwrap();
        }
        assert_eq!(exec.inflight_count(), 5);
        let next = exec.next_completion_at().unwrap();
        let done = exec.poll(Nanos::from_millis(10));
        assert_eq!(done.len(), 5);
        assert_eq!(done[0].done_at, next);
        for w in done.windows(2) {
            assert!(w[0].done_at <= w[1].done_at);
        }
    }

    #[test]
    fn span_requests_complete_as_one_batch() {
        let mut exec = ExecutionEngine::new();
        let mut link = RdmaEngine::new(RdmaConfig::default());
        let s = stream_id();
        let single = exec
            .request(
                Pid::new(1),
                Vpn::new(0),
                s,
                Tier::Simple,
                Nanos::ZERO,
                &mut link,
            )
            .unwrap()
            .unwrap();
        let batch = exec
            .request_span(
                Pid::new(1),
                Vpn::new(1_000),
                512,
                s,
                Tier::Simple,
                Nanos::ZERO,
                &mut link,
            )
            .unwrap()
            .unwrap();
        // 2 MB serializes far longer than 4 KB, but pays one base latency.
        assert!(batch > single);
        let done = exec.poll(Nanos::from_secs(1));
        assert_eq!(done.len(), 2);
        let b = done.iter().find(|c| c.span == 512).unwrap();
        assert_eq!(b.vpn, Vpn::new(1_000));
        assert_eq!(link.stats().reads, 2, "one read per request, not per page");
    }

    #[test]
    fn distinct_processes_do_not_collide() {
        let mut exec = ExecutionEngine::new();
        let mut link = RdmaEngine::new(RdmaConfig::default());
        let s = stream_id();
        assert!(exec
            .request(
                Pid::new(1),
                Vpn::new(9),
                s,
                Tier::Simple,
                Nanos::ZERO,
                &mut link
            )
            .unwrap()
            .is_some());
        assert!(exec
            .request(
                Pid::new(2),
                Vpn::new(9),
                s,
                Tier::Simple,
                Nanos::ZERO,
                &mut link
            )
            .unwrap()
            .is_some());
        assert_eq!(exec.stats().issued, 2);
    }
}
