#![warn(missing_docs)]
//! HoPP's software side: the prefetch training framework, policy engine
//! and execution engine (§III-D, §III-E, §III-F of the paper).
//!
//! The hardware pipeline (`hopp-hw`) delivers an ordered, real-time
//! stream of hot pages `(PID, VPN, flags, t)`. This crate turns that
//! stream into prefetches:
//!
//! 1. [`stt::StreamTrainingTable`] groups hot pages into candidate
//!    streams (64 entries, history length `L = 16`, clustering distance
//!    `Δ_stream = 64`).
//! 2. [`three_tier::ThreeTier`] runs **Adaptive Three-Tier Prefetching**
//!    on each full history window: [`ssp`] (simple streams) first, then
//!    [`lsp`] (ladder streams, Algorithm 1), then [`rsp`] (ripple
//!    streams, Algorithm 2). Each tier can be disabled for ablations.
//! 3. [`policy::PolicyEngine`] applies the two knobs — *prefetch
//!    intensity* and *prefetch offset* — and adapts the offset from
//!    measured timeliness (`T_min = 40 µs`, `T_max = 5 ms`, `α = 0.2`).
//! 4. [`exec::ExecutionEngine`] dedupes requests, issues asynchronous
//!    RDMA reads and reports completions so the kernel side can perform
//!    early PTE injection.
//!
//! [`metrics::PrefetchMetrics`] implements the paper's accuracy /
//! coverage / timeliness definitions (§VI-A) and is shared with the
//! baseline prefetchers so every system is measured identically.
//!
//! # Example
//!
//! ```
//! use hopp_core::{HoppConfig, HoppEngine};
//! use hopp_types::{HotPage, Nanos, PageFlags, Pid, Vpn};
//!
//! let mut engine = HoppEngine::new(HoppConfig::default());
//! // Feed a simple stride-2 stream of hot pages; once the history
//! // window fills, the engine starts predicting ahead of the stream.
//! let mut orders = Vec::new();
//! for k in 0..20u64 {
//!     let hot = HotPage { pid: Pid::new(1), vpn: Vpn::new(100 + 2 * k),
//!                         flags: PageFlags::default(),
//!                         at: Nanos::from_micros(k) };
//!     orders.extend(engine.on_hot_page(&hot));
//! }
//! assert!(!orders.is_empty());
//! // Predictions run ahead with the detected stride (even VPNs).
//! assert!(orders.iter().all(|o| o.vpn.raw() % 2 == 0));
//! ```

pub mod engine;
pub mod exec;
pub mod lsp;
pub mod markov;
pub mod metrics;
pub mod policy;
pub mod rsp;
pub mod ssp;
pub mod stt;
pub mod three_tier;

pub use engine::{HoppConfig, HoppEngine, PrefetchOrder, TrainerKind};
pub use exec::{Completion, ExecStats, ExecutionEngine};
pub use markov::{MarkovConfig, MarkovEngine};
pub use metrics::{MetricsReport, PrefetchMetrics};
pub use policy::{HugeBatchConfig, PolicyConfig, PolicyEngine};
pub use stt::{StreamId, StreamTrainingTable, StreamWindow, SttConfig};
pub use three_tier::{Prediction, ThreeTier, Tier, TierConfig};
