//! The assembled HoPP training stack: STT → three-tier → policy.
//!
//! [`HoppEngine`] is the software half of Figure 4's architecture in one
//! object: hot pages in, prefetch orders out, timeliness feedback back
//! in. The execution engine ([`crate::exec::ExecutionEngine`]) is kept
//! separate because it owns the network side and the simulator threads
//! the RDMA link through it explicitly.

use hopp_obs::{Event, NopRecorder, Recorder, TierKind};
use hopp_types::{HotPage, Nanos, Result};

use crate::markov::{MarkovConfig, MarkovEngine};
pub use crate::policy::PolicyOrder as PrefetchOrder;
use crate::policy::{PolicyConfig, PolicyEngine, PolicyStats};
use crate::stt::{StreamId, StreamTrainingTable, SttConfig, SttStats};
use crate::three_tier::{ThreeTier, TierConfig, TierStats};

/// Which trace-driven prediction algorithm the software runs. The
/// training framework is deliberately replaceable (§III-D: "our
/// proposal is just one solution in a large design space").
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum TrainerKind {
    /// The paper's adaptive three-tier prefetching (STT + SSP/LSP/RSP).
    #[default]
    ThreeTier,
    /// A first-order Markov (address-correlation) predictor.
    Markov(MarkovConfig),
}

/// Configuration of the whole software stack.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct HoppConfig {
    /// Stream training table parameters.
    pub stt: SttConfig,
    /// Tier selection (ablation knob).
    pub tiers: TierConfig,
    /// Policy knobs (intensity, offset control).
    pub policy: PolicyConfig,
    /// The prediction algorithm (three-tier by default).
    pub trainer: TrainerKind,
    /// Skip hot pages whose RPT entry carries the shared flag (§III-C
    /// forwards the flag "for better predictions"; prefetching a shared
    /// page for one process can steal it from another, so conservative
    /// deployments ignore them).
    pub ignore_shared_pages: bool,
}

/// The HoPP prefetch training framework plus policy engine.
#[derive(Clone, Debug)]
pub struct HoppEngine {
    stt: StreamTrainingTable,
    tiers: ThreeTier,
    policy: PolicyEngine,
    markov: Option<MarkovEngine>,
    ignore_shared: bool,
    hot_pages_seen: u64,
}

impl HoppEngine {
    /// Builds the engine.
    ///
    /// # Panics
    ///
    /// Panics if the STT configuration is invalid; use
    /// [`HoppEngine::try_new`] to handle that as an error.
    pub fn new(config: HoppConfig) -> Self {
        // hopp-check: allow(panic-policy): documented panicking convenience constructor; try_new is the fallible path
        Self::try_new(config).expect("invalid HoPP configuration")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns the validation error of an invalid [`SttConfig`].
    pub fn try_new(config: HoppConfig) -> Result<Self> {
        Ok(HoppEngine {
            stt: StreamTrainingTable::new(config.stt)?,
            tiers: ThreeTier::new(config.tiers),
            policy: PolicyEngine::new(config.policy),
            markov: match config.trainer {
                TrainerKind::ThreeTier => None,
                TrainerKind::Markov(mc) => Some(MarkovEngine::new(mc)),
            },
            ignore_shared: config.ignore_shared_pages,
            hot_pages_seen: 0,
        })
    }

    /// Consumes one hot page from the hardware pipeline and returns the
    /// prefetch orders it triggers (empty while streams are still in
    /// training or the window matches no pattern).
    pub fn on_hot_page(&mut self, hot: &HotPage) -> Vec<PrefetchOrder> {
        self.on_hot_page_rec(hot, &mut NopRecorder)
    }

    /// [`HoppEngine::on_hot_page`], recording the stream lifecycle (via
    /// the STT) and an [`Event::TierDecision`] whenever a training
    /// window is classified by one of the tiers (or the Markov trainer
    /// makes a prediction).
    pub fn on_hot_page_rec(&mut self, hot: &HotPage, rec: &mut dyn Recorder) -> Vec<PrefetchOrder> {
        let _prof = hopp_prof::span("core/train");
        if self.ignore_shared && hot.flags.shared {
            return Vec::new();
        }
        if let Some(markov) = &mut self.markov {
            let orders = markov.on_hot_page(hot);
            if rec.is_enabled() && !orders.is_empty() {
                rec.record(
                    hot.at,
                    Event::TierDecision {
                        tier: TierKind::Markov,
                        pid: hot.pid,
                        vpn: hot.vpn,
                    },
                );
            }
            return orders;
        }
        self.hot_pages_seen += 1;
        // Policy state (offsets, batch frontiers) is keyed by StreamId;
        // prune entries of streams the STT has since recycled so state
        // stays bounded over arbitrarily long runs.
        if self.hot_pages_seen.is_multiple_of(4_096) {
            let live: std::collections::BTreeSet<StreamId> = self.stt.live_stream_ids().collect();
            self.policy.retain_streams(|s| live.contains(&s));
        }
        let Some(window) = self.stt.observe_rec(hot, rec) else {
            return Vec::new();
        };
        let Some(prediction) = self.tiers.predict(&window) else {
            return Vec::new();
        };
        if rec.is_enabled() {
            let tier = match prediction.tier() {
                crate::three_tier::Tier::Simple => TierKind::Ssp,
                crate::three_tier::Tier::Ladder => TierKind::Lsp,
                crate::three_tier::Tier::Ripple => TierKind::Rsp,
            };
            rec.record(
                hot.at,
                Event::TierDecision {
                    tier,
                    pid: hot.pid,
                    vpn: hot.vpn,
                },
            );
        }
        self.policy.finalize(&window, prediction)
    }

    /// Feeds back the timeliness of a prefetched page (measured by the
    /// caller from PTE-injection time to first hit).
    pub fn on_timeliness(&mut self, stream: StreamId, t: Nanos) {
        self.policy.record_timeliness(stream, t);
    }

    /// STT counters.
    pub fn stt_stats(&self) -> SttStats {
        self.stt.stats()
    }

    /// Per-tier prediction counters.
    pub fn tier_stats(&self) -> TierStats {
        self.tiers.stats()
    }

    /// Policy counters.
    pub fn policy_stats(&self) -> PolicyStats {
        self.policy.stats()
    }

    /// Markov counters, when the Markov trainer is active.
    pub fn markov_stats(&self) -> Option<crate::markov::MarkovStats> {
        self.markov.as_ref().map(|m| m.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::three_tier::Tier;
    use hopp_types::{PageFlags, Pid, Vpn};

    fn hot(pid: u16, vpn: u64, us: u64) -> HotPage {
        HotPage {
            pid: Pid::new(pid),
            vpn: Vpn::new(vpn),
            flags: PageFlags::default(),
            at: Nanos::from_micros(us),
        }
    }

    #[test]
    fn stride_stream_produces_forward_orders() {
        let mut e = HoppEngine::new(HoppConfig::default());
        let mut orders = Vec::new();
        for k in 0..32u64 {
            orders.extend(e.on_hot_page(&hot(1, 1_000 + 4 * k, k)));
        }
        assert!(!orders.is_empty());
        // All predictions continue the stride-4 stream ahead of VPN_A.
        for o in &orders {
            assert_eq!((o.vpn.raw() - 1_000) % 4, 0);
            assert_eq!(o.tier, Tier::Simple);
        }
        assert_eq!(e.tier_stats().simple, orders.len() as u64);
    }

    #[test]
    fn training_needs_a_full_window() {
        let mut e = HoppEngine::new(HoppConfig::default());
        // 15 pages: one short of the default L=16 window.
        for k in 0..15u64 {
            assert!(e.on_hot_page(&hot(1, 100 + k, k)).is_empty());
        }
        assert!(!e.on_hot_page(&hot(1, 115, 15)).is_empty());
    }

    #[test]
    fn random_pages_produce_no_orders() {
        let mut e = HoppEngine::new(HoppConfig::default());
        let mut n = 0;
        // Scattered pages, each its own "stream" that never fills.
        for k in 0..200u64 {
            n += e.on_hot_page(&hot(1, (k * 7_919) % 1_000_000, k)).len();
        }
        assert_eq!(n, 0);
    }

    #[test]
    fn timeliness_feedback_moves_offsets() {
        let mut e = HoppEngine::new(HoppConfig::default());
        let mut first_order = None;
        for k in 0..40u64 {
            for o in e.on_hot_page(&hot(1, 2 * k, k)) {
                if first_order.is_none() {
                    first_order = Some(o);
                }
                // Pretend every page arrived barely in time.
                e.on_timeliness(o.stream, Nanos::from_micros(1));
            }
        }
        let o = first_order.expect("orders were produced");
        // After many too-late samples the offset grew past 1, so later
        // orders reach further ahead than the first one did relative to
        // their VPN_A. Verify via the policy stats.
        assert!(e.policy_stats().too_late > 0);
        assert_eq!(o.tier, Tier::Simple);
    }

    #[test]
    fn markov_trainer_replaces_three_tier() {
        let mut e = HoppEngine::new(HoppConfig {
            trainer: TrainerKind::Markov(crate::markov::MarkovConfig::default()),
            ..HoppConfig::default()
        });
        // An irregular but repeating sequence: three-tier finds nothing,
        // the Markov predictor learns it on the second pass.
        let seq = [5u64, 900, 17, 3_000, 42];
        for &v in &seq {
            assert!(e.on_hot_page(&hot(1, v, 0)).is_empty());
        }
        let mut predicted = 0;
        for &v in &seq {
            predicted += e.on_hot_page(&hot(1, v, 1)).len();
        }
        assert!(predicted > 0);
        assert!(e.markov_stats().unwrap().transitions > 0);
        assert_eq!(e.tier_stats().simple, 0, "three-tier never ran");
    }

    #[test]
    fn policy_state_is_pruned_for_recycled_streams() {
        let mut e = HoppEngine::new(HoppConfig {
            stt: SttConfig {
                entries: 2,
                history: 4,
                ..SttConfig::default()
            },
            ..HoppConfig::default()
        });
        // Churn through thousands of short-lived streams, generating
        // timeliness feedback for each; without pruning the policy map
        // would hold one entry per stream ever created.
        for round in 0..3_000u64 {
            let base = round * 10_000;
            for k in 0..5 {
                for o in e.on_hot_page(&hot(1, base + k, round)) {
                    e.on_timeliness(o.stream, Nanos::from_nanos(1));
                }
            }
        }
        assert!(
            e.policy.tracked_streams() <= 2 + 4_096,
            "policy state bounded, got {}",
            e.policy.tracked_streams()
        );
    }

    #[test]
    fn shared_pages_can_be_ignored() {
        let mut e = HoppEngine::new(HoppConfig {
            ignore_shared_pages: true,
            ..HoppConfig::default()
        });
        for k in 0..32u64 {
            let mut h = hot(1, 100 + k, k);
            h.flags.shared = true;
            assert!(e.on_hot_page(&h).is_empty(), "shared pages never train");
        }
        assert_eq!(e.stt_stats().observed, 0);
        // Without the flag the same stream trains normally.
        let mut e = HoppEngine::new(HoppConfig::default());
        let mut n = 0;
        for k in 0..32u64 {
            let mut h = hot(1, 100 + k, k);
            h.flags.shared = true;
            n += e.on_hot_page(&h).len();
        }
        assert!(n > 0);
    }

    #[test]
    fn invalid_config_is_an_error() {
        let bad = HoppConfig {
            stt: SttConfig {
                history: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(HoppEngine::try_new(bad).is_err());
    }
}
