//! Adaptive Three-Tier Prefetching — §III-D of the paper.
//!
//! Each full training window is tried against the three pattern
//! detectors in order of prevalence and cost: SSP (simple streams)
//! first, LSP (ladder streams) if SSP fails, RSP (ripple streams) as
//! the last resort. Each tier can be disabled, which is how the
//! paper's Figure 18–20 ablation (SSP, SSP+LSP, SSP+LSP+RSP) is run.

use crate::stt::StreamWindow;
use crate::{lsp, rsp, ssp};
use hopp_types::Vpn;

/// Which algorithm produced a prediction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Tier {
    /// Simple-stream prefetch (majority stride).
    Simple,
    /// Ladder-stream prefetch (Algorithm 1).
    Ladder,
    /// Ripple-stream prefetch (Algorithm 2).
    Ripple,
}

impl Tier {
    /// All tiers, in dispatch order.
    pub const ALL: [Tier; 3] = [Tier::Simple, Tier::Ladder, Tier::Ripple];

    /// Short label for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Simple => "SSP",
            Tier::Ladder => "LSP",
            Tier::Ripple => "RSP",
        }
    }
}

/// Which tiers participate (the Fig 18–20 ablation knob).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TierConfig {
    /// Enable simple-stream detection.
    pub ssp: bool,
    /// Enable ladder-stream detection.
    pub lsp: bool,
    /// Enable ripple-stream detection.
    pub rsp: bool,
    /// RSP's out-of-order tolerance (`max_stride`). Default 2.
    pub max_stride: i64,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            ssp: true,
            lsp: true,
            rsp: true,
            max_stride: rsp::MAX_STRIDE,
        }
    }
}

impl TierConfig {
    /// SSP only (the first bar of Fig 18).
    pub fn ssp_only() -> Self {
        TierConfig {
            lsp: false,
            rsp: false,
            ..Default::default()
        }
    }

    /// SSP + LSP (the second bar of Fig 18).
    pub fn ssp_lsp() -> Self {
        TierConfig {
            rsp: false,
            ..Default::default()
        }
    }
}

/// A prediction: how to compute target pages from `VPN_A` and the
/// prefetch offset `i`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Prediction {
    /// A simple stream with the given dominant stride: prefetch
    /// `VPN_A + i × stride`.
    Simple {
        /// The dominant stride.
        stride: i64,
    },
    /// A ladder stream: prefetch
    /// `VPN_A + stride_target + i × pattern_stride`.
    Ladder {
        /// Next stride of the target pattern.
        stride_target: i64,
        /// Distance between pattern repetitions.
        pattern_stride: i64,
    },
    /// A ripple stream (stride 1): prefetch `VPN_A + i`.
    Ripple,
}

impl Prediction {
    /// The tier that produced this prediction.
    pub fn tier(&self) -> Tier {
        match self {
            Prediction::Simple { .. } => Tier::Simple,
            Prediction::Ladder { .. } => Tier::Ladder,
            Prediction::Ripple => Tier::Ripple,
        }
    }

    /// The page this prediction targets at prefetch offset `i`
    /// (`None` if the target would leave the address space).
    pub fn target(&self, vpn_a: Vpn, i: i64) -> Option<Vpn> {
        match *self {
            Prediction::Simple { stride } => vpn_a.offset(i.checked_mul(stride)?),
            Prediction::Ladder {
                stride_target,
                pattern_stride,
            } => vpn_a.offset(stride_target.checked_add(i.checked_mul(pattern_stride)?)?),
            Prediction::Ripple => vpn_a.offset(i),
        }
    }
}

/// Per-tier prediction counters.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct TierStats {
    /// Predictions produced by SSP.
    pub simple: u64,
    /// Predictions produced by LSP.
    pub ladder: u64,
    /// Predictions produced by RSP.
    pub ripple: u64,
    /// Windows no enabled tier could classify.
    pub unclassified: u64,
}

impl TierStats {
    /// Counter for one tier.
    pub fn for_tier(&self, tier: Tier) -> u64 {
        match tier {
            Tier::Simple => self.simple,
            Tier::Ladder => self.ladder,
            Tier::Ripple => self.ripple,
        }
    }
}

/// The adaptive dispatcher.
#[derive(Clone, Debug)]
pub struct ThreeTier {
    config: TierConfig,
    stats: TierStats,
}

impl ThreeTier {
    /// Creates a dispatcher with the given tier selection.
    pub fn new(config: TierConfig) -> Self {
        ThreeTier {
            config,
            stats: TierStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> TierConfig {
        self.config
    }

    /// Classifies a window, trying SSP → LSP → RSP.
    pub fn predict(&mut self, window: &StreamWindow) -> Option<Prediction> {
        let _prof = hopp_prof::span("core/tier_predict");
        if self.config.ssp {
            if let Some(stride) = ssp::dominant_stride(window) {
                self.stats.simple += 1;
                return Some(Prediction::Simple { stride });
            }
        }
        if self.config.lsp {
            if let Some(p) = lsp::predict(window) {
                self.stats.ladder += 1;
                return Some(Prediction::Ladder {
                    stride_target: p.stride_target,
                    pattern_stride: p.pattern_stride,
                });
            }
        }
        if self.config.rsp && rsp::is_ripple_with(window, self.config.max_stride) {
            self.stats.ripple += 1;
            return Some(Prediction::Ripple);
        }
        self.stats.unclassified += 1;
        None
    }

    /// Per-tier counters.
    pub fn stats(&self) -> TierStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stt::{StreamId, StreamWindow};
    use hopp_types::{Nanos, Pid};

    fn window_from_vpns(vpns: &[u64]) -> StreamWindow {
        let vpn_history: Vec<Vpn> = vpns.iter().map(|&v| Vpn::new(v)).collect();
        let stride_history: Vec<i64> = vpn_history
            .windows(2)
            .map(|w| w[1].stride_from(w[0]))
            .collect();
        StreamWindow {
            stream: StreamId {
                slot: 0,
                generation: 0,
            },
            pid: Pid::new(1),
            vpn_history,
            stride_history,
            at: Nanos::ZERO,
        }
    }

    fn simple_window() -> StreamWindow {
        window_from_vpns(&(0..16).map(|k| 100 + 4 * k).collect::<Vec<_>>())
    }

    fn ladder_window() -> StreamWindow {
        // Strides cycle (2, 12, 7): no majority, but the 2-stride
        // pattern repeats.
        let mut vpns = vec![0u64];
        let strides = [2i64, 12, 7];
        for k in 0..15 {
            let last = *vpns.last().unwrap();
            vpns.push((last as i64 + strides[k % 3]) as u64);
        }
        window_from_vpns(&vpns)
    }

    fn ripple_window() -> StreamWindow {
        // Stride-1 scan with pervasive adjacent swaps: no single stride
        // dominates (SSP fails), the newest stride pair never repeats
        // (LSP fails), but cumulative strides keep returning to 0 (RSP).
        window_from_vpns(&[
            100, 102, 101, 104, 103, 106, 105, 108, 107, 110, 109, 112, 111, 114, 113, 115,
        ])
    }

    fn random_window() -> StreamWindow {
        window_from_vpns(&[
            100, 900, 40, 7000, 3, 650, 12000, 88, 4100, 77, 950, 31, 8000, 210, 5, 666,
        ])
    }

    #[test]
    fn dispatch_order_ssp_first() {
        let mut tt = ThreeTier::new(TierConfig::default());
        let p = tt.predict(&simple_window()).unwrap();
        assert_eq!(p, Prediction::Simple { stride: 4 });
        assert_eq!(tt.stats().simple, 1);
    }

    #[test]
    fn ladder_falls_through_to_lsp() {
        let mut tt = ThreeTier::new(TierConfig::default());
        let p = tt.predict(&ladder_window()).unwrap();
        assert_eq!(p.tier(), Tier::Ladder);
        assert_eq!(tt.stats().ladder, 1);
    }

    #[test]
    fn ripple_falls_through_to_rsp() {
        let mut tt = ThreeTier::new(TierConfig::default());
        let p = tt.predict(&ripple_window()).unwrap();
        assert_eq!(p, Prediction::Ripple);
        assert_eq!(tt.stats().ripple, 1);
    }

    #[test]
    fn unclassified_windows_are_counted() {
        let mut tt = ThreeTier::new(TierConfig::default());
        assert_eq!(tt.predict(&random_window()), None);
        assert_eq!(tt.stats().unclassified, 1);
    }

    #[test]
    fn disabled_tiers_do_not_fire() {
        let mut tt = ThreeTier::new(TierConfig::ssp_only());
        assert_eq!(tt.predict(&ripple_window()).map(|p| p.tier()), None);
        let mut tt = ThreeTier::new(TierConfig::ssp_lsp());
        assert_eq!(tt.predict(&ripple_window()), None);
        assert_eq!(tt.predict(&ladder_window()).unwrap().tier(), Tier::Ladder);
    }

    #[test]
    fn targets_follow_the_paper_formulas() {
        let a = Vpn::new(1_000);
        assert_eq!(
            Prediction::Simple { stride: 3 }.target(a, 2),
            Some(Vpn::new(1_006))
        );
        assert_eq!(
            Prediction::Ladder {
                stride_target: 2,
                pattern_stride: 18
            }
            .target(a, 1),
            Some(Vpn::new(1_020))
        );
        assert_eq!(Prediction::Ripple.target(a, 5), Some(Vpn::new(1_005)));
        // Negative-stride streams prefetch downwards.
        assert_eq!(
            Prediction::Simple { stride: -4 }.target(a, 3),
            Some(Vpn::new(988))
        );
        // Underflow is rejected, not wrapped.
        assert_eq!(
            Prediction::Simple { stride: -1 }.target(Vpn::new(1), 2),
            None
        );
    }

    #[test]
    fn tier_labels() {
        assert_eq!(Tier::Simple.label(), "SSP");
        assert_eq!(Tier::Ladder.label(), "LSP");
        assert_eq!(Tier::Ripple.label(), "RSP");
        assert_eq!(Tier::ALL.len(), 3);
    }
}
