//! The Stream Training Table (STT) — §III-D(1) of the paper.
//!
//! The STT groups the hot-page stream into candidate page streams. It
//! has 64 entries managed LRU; each entry holds a PID, the last `L`
//! VPNs received for that stream (`VPN_history`) and the `L-1` strides
//! between them (`stride_history`). A new hot page joins an existing
//! entry when the PID matches and its VPN is within `Δ_stream` pages of
//! the entry's most recent VPN (*page clustering* — streams live in
//! separate address subspaces). Once an entry's history is full, every
//! further hot page yields a [`StreamWindow`] for the prefetch
//! algorithms to analyse.

use hopp_obs::{Event, NopRecorder, Recorder};
use hopp_types::{Error, HotPage, Nanos, Pid, Result, Vpn};

/// Identifies a stream across the lifetime of a run.
///
/// STT entries are recycled (LRU), so the slot index alone is
/// ambiguous; a generation counter disambiguates. Policy state
/// (prefetch offsets, timeliness) is keyed by `StreamId`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StreamId {
    pub(crate) slot: u16,
    pub(crate) generation: u32,
}

impl StreamId {
    /// The STT slot currently (or formerly) hosting the stream.
    pub fn slot(self) -> usize {
        self.slot as usize
    }

    /// How many times the slot has been recycled before this stream.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// STT parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SttConfig {
    /// Number of table entries (streams trackable at once). Default 64.
    pub entries: usize,
    /// History length `L`. Larger `L` is a stricter stream condition
    /// and more robust to interference. Default 16.
    pub history: usize,
    /// Page clustering distance `Δ_stream`. Default 64.
    pub delta_stream: u64,
}

impl Default for SttConfig {
    fn default() -> Self {
        SttConfig {
            entries: 64,
            history: 16,
            delta_stream: 64,
        }
    }
}

impl SttConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `entries == 0`, `history < 4`
    /// (the algorithms need at least a few strides) or
    /// `delta_stream == 0`.
    pub fn validate(&self) -> Result<()> {
        if self.entries == 0 {
            return Err(Error::InvalidConfig {
                what: "stt entries",
                constraint: "at least 1",
            });
        }
        if self.history < 4 {
            return Err(Error::InvalidConfig {
                what: "stt history",
                constraint: "at least 4",
            });
        }
        if self.delta_stream == 0 {
            return Err(Error::InvalidConfig {
                what: "delta_stream",
                constraint: "at least 1",
            });
        }
        Ok(())
    }
}

/// A full training window: the state handed to the prefetch algorithms.
///
/// `vpn_history[L-1]` is the newest page (the paper's `VPN_A`);
/// `stride_history[i] = vpn_history[i+1] - vpn_history[i]`, so
/// `stride_history[L-2]` is the newest stride (`stride_A`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StreamWindow {
    /// The stream's identity (for policy state).
    pub stream: StreamId,
    /// Owning process.
    pub pid: Pid,
    /// The last `L` VPNs, oldest first.
    pub vpn_history: Vec<Vpn>,
    /// The `L-1` strides between consecutive VPNs.
    pub stride_history: Vec<i64>,
    /// Arrival time of the newest hot page.
    pub at: Nanos,
}

impl StreamWindow {
    /// The newest page, `VPN_A`.
    pub fn vpn_a(&self) -> Vpn {
        // hopp-check: allow(panic-policy): windows are built from at least one hot page; emptiness is a construction bug
        *self.vpn_history.last().expect("window is non-empty")
    }

    /// The newest stride, `stride_A`.
    pub fn stride_a(&self) -> i64 {
        // hopp-check: allow(panic-policy): reported windows carry >= 2 pages, hence >= 1 stride, by the report threshold
        *self.stride_history.last().expect("window has strides")
    }

    /// History length `L`.
    pub fn len(&self) -> usize {
        self.vpn_history.len()
    }

    /// Windows are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[derive(Clone, Debug)]
struct SttEntry {
    pid: Pid,
    vpns: Vec<Vpn>,
    strides: Vec<i64>,
    lru: u64,
    generation: u32,
    valid: bool,
}

/// STT activity counters.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct SttStats {
    /// Hot pages consumed.
    pub observed: u64,
    /// Hot pages dropped as duplicates of a stream's newest page.
    pub deduped: u64,
    /// Entries recycled for a new stream.
    pub evictions: u64,
    /// Full windows produced.
    pub windows: u64,
}

/// The stream training table.
///
/// # Example
///
/// ```
/// use hopp_core::stt::{StreamTrainingTable, SttConfig};
/// use hopp_types::{HotPage, Nanos, PageFlags, Pid, Vpn};
///
/// let mut stt = StreamTrainingTable::new(SttConfig { history: 4, ..Default::default() })?;
/// let mut windows = 0;
/// for k in 0..6u64 {
///     let hot = HotPage { pid: Pid::new(1), vpn: Vpn::new(10 + k), flags: PageFlags::default(),
///                         at: Nanos::ZERO };
///     if stt.observe(&hot).is_some() { windows += 1; }
/// }
/// assert_eq!(windows, 3); // windows at the 4th, 5th and 6th page
/// # Ok::<(), hopp_types::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct StreamTrainingTable {
    config: SttConfig,
    entries: Vec<SttEntry>,
    clock: u64,
    stats: SttStats,
}

impl StreamTrainingTable {
    /// Builds an empty table.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for invalid parameters.
    pub fn new(config: SttConfig) -> Result<Self> {
        config.validate()?;
        Ok(StreamTrainingTable {
            entries: (0..config.entries)
                .map(|_| SttEntry {
                    pid: Pid::KERNEL,
                    vpns: Vec::with_capacity(config.history),
                    strides: Vec::with_capacity(config.history - 1),
                    lru: 0,
                    generation: 0,
                    valid: false,
                })
                .collect(),
            config,
            clock: 0,
            stats: SttStats::default(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> SttConfig {
        self.config
    }

    /// Feeds one hot page; returns a training window when the page
    /// extends a stream whose history is full.
    pub fn observe(&mut self, hot: &HotPage) -> Option<StreamWindow> {
        self.observe_rec(hot, &mut NopRecorder)
    }

    /// [`StreamTrainingTable::observe`], recording stream lifecycle
    /// events: [`Event::StreamUpdated`] when a hot page extends an
    /// existing stream, [`Event::StreamEvicted`] +
    /// [`Event::StreamCreated`] when a new one recycles a slot.
    pub fn observe_rec(&mut self, hot: &HotPage, rec: &mut dyn Recorder) -> Option<StreamWindow> {
        self.clock += 1;
        self.stats.observed += 1;

        // Find the best matching entry: same PID, newest VPN within
        // Δ_stream. Among several matches take the closest, so two
        // nearby streams don't steal each other's pages.
        let mut best: Option<(usize, u64)> = None;
        for (idx, e) in self.entries.iter().enumerate() {
            if !e.valid || e.pid != hot.pid {
                continue;
            }
            // hopp-check: allow(panic-policy): a valid entry always holds its seed page; emptiness is an insertion bug
            let last = *e.vpns.last().expect("valid entries are non-empty");
            let dist = last.raw().abs_diff(hot.vpn.raw());
            if dist <= self.config.delta_stream && best.is_none_or(|(_, d)| dist < d) {
                best = Some((idx, dist));
            }
        }

        let l = self.config.history;
        match best {
            Some((idx, dist)) => {
                if dist == 0 {
                    // Repeated extraction of the same hot page —
                    // de-duplicated in the training framework (§III-B).
                    self.entries[idx].lru = self.clock;
                    self.stats.deduped += 1;
                    return None;
                }
                let clock = self.clock;
                let e = &mut self.entries[idx];
                e.lru = clock;
                // hopp-check: allow(panic-policy): the entry matched this hot page, so it holds at least the seed page
                let last = *e.vpns.last().expect("non-empty");
                e.vpns.push(hot.vpn);
                e.strides.push(hot.vpn.stride_from(last));
                if e.vpns.len() > l {
                    e.vpns.remove(0);
                    e.strides.remove(0);
                }
                if rec.is_enabled() {
                    rec.record(
                        hot.at,
                        Event::StreamUpdated {
                            slot: idx as u16,
                            generation: e.generation,
                            pid: hot.pid,
                            vpn: hot.vpn,
                        },
                    );
                }
                if e.vpns.len() == l {
                    self.stats.windows += 1;
                    let e = &self.entries[idx];
                    return Some(StreamWindow {
                        stream: StreamId {
                            slot: idx as u16,
                            generation: e.generation,
                        },
                        pid: hot.pid,
                        vpn_history: e.vpns.clone(),
                        stride_history: e.strides.clone(),
                        at: hot.at,
                    });
                }
                None
            }
            None => {
                // Allocate a new entry, recycling the LRU victim.
                let victim = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
                    .map(|(i, _)| i)
                    // hopp-check: allow(panic-policy): SttConfig::validate rejects zero entries at construction
                    .expect("entries >= 1 validated");
                let clock = self.clock;
                let e = &mut self.entries[victim];
                if e.valid {
                    self.stats.evictions += 1;
                    if rec.is_enabled() {
                        rec.record(
                            hot.at,
                            Event::StreamEvicted {
                                slot: victim as u16,
                                generation: e.generation,
                            },
                        );
                    }
                    e.generation += 1;
                }
                e.pid = hot.pid;
                e.vpns.clear();
                e.strides.clear();
                e.vpns.push(hot.vpn);
                e.lru = clock;
                e.valid = true;
                if rec.is_enabled() {
                    rec.record(
                        hot.at,
                        Event::StreamCreated {
                            slot: victim as u16,
                            generation: e.generation,
                            pid: hot.pid,
                            vpn: hot.vpn,
                        },
                    );
                }
                None
            }
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> SttStats {
        self.stats
    }

    /// Number of valid (in-training) entries.
    pub fn active_streams(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// The identities of the streams currently resident in the table.
    /// Policy state for ids not in this set belongs to evicted streams
    /// and can be dropped.
    pub fn live_stream_ids(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.valid)
            .map(|(idx, e)| StreamId {
                slot: idx as u16,
                generation: e.generation,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopp_types::PageFlags;

    fn hot(pid: u16, vpn: u64) -> HotPage {
        HotPage {
            pid: Pid::new(pid),
            vpn: Vpn::new(vpn),
            flags: PageFlags::default(),
            at: Nanos::ZERO,
        }
    }

    fn stt(history: usize) -> StreamTrainingTable {
        StreamTrainingTable::new(SttConfig {
            history,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(SttConfig {
            entries: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SttConfig {
            history: 3,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SttConfig {
            delta_stream: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SttConfig::default().validate().is_ok());
    }

    #[test]
    fn window_appears_when_history_fills() {
        let mut t = stt(4);
        assert!(t.observe(&hot(1, 10)).is_none());
        assert!(t.observe(&hot(1, 12)).is_none());
        assert!(t.observe(&hot(1, 14)).is_none());
        let w = t.observe(&hot(1, 16)).unwrap();
        assert_eq!(
            w.vpn_history,
            vec![Vpn::new(10), Vpn::new(12), Vpn::new(14), Vpn::new(16)]
        );
        assert_eq!(w.stride_history, vec![2, 2, 2]);
        assert_eq!(w.vpn_a(), Vpn::new(16));
        assert_eq!(w.stride_a(), 2);
    }

    #[test]
    fn window_slides_after_full() {
        let mut t = stt(4);
        for v in [10, 12, 14, 16] {
            t.observe(&hot(1, v));
        }
        let w = t.observe(&hot(1, 18)).unwrap();
        assert_eq!(w.vpn_history[0], Vpn::new(12));
        assert_eq!(w.vpn_a(), Vpn::new(18));
        assert_eq!(t.stats().windows, 2);
    }

    #[test]
    fn pid_separates_streams() {
        let mut t = stt(4);
        // Two processes interleave the *same* VPNs; each gets its own
        // stream (the hot-page trace carries PIDs, §VI-B).
        for v in [10, 11, 12] {
            t.observe(&hot(1, v));
            t.observe(&hot(2, v));
        }
        assert_eq!(t.active_streams(), 2);
        assert!(t.observe(&hot(1, 13)).is_some());
        assert!(t.observe(&hot(2, 13)).is_some());
    }

    #[test]
    fn clustering_separates_address_subspaces() {
        let mut t = stt(4);
        // Two streams 1M pages apart, interleaved: page clustering keeps
        // them in separate entries (the Leap failure mode of §II-B).
        for k in 0..4u64 {
            t.observe(&hot(1, 1000 + k));
            t.observe(&hot(1, 2_000_000 + 2 * k));
        }
        assert_eq!(t.active_streams(), 2);
        let w = t.observe(&hot(1, 1004)).unwrap();
        assert_eq!(w.stride_history, vec![1, 1, 1]);
    }

    #[test]
    fn duplicate_hot_pages_are_deduped() {
        let mut t = stt(4);
        t.observe(&hot(1, 10));
        assert!(t.observe(&hot(1, 10)).is_none());
        assert_eq!(t.stats().deduped, 1);
        // The stream is not polluted by the duplicate.
        t.observe(&hot(1, 11));
        t.observe(&hot(1, 12));
        let w = t.observe(&hot(1, 13)).unwrap();
        assert_eq!(w.stride_history, vec![1, 1, 1]);
    }

    #[test]
    fn closest_stream_wins_on_overlap() {
        let mut t = stt(4);
        // Stream A sits at 100; stream B starts at 200 (too far to join
        // A) and walks down towards it.
        t.observe(&hot(1, 100));
        for v in [200, 190, 180, 170] {
            t.observe(&hot(1, v));
        }
        assert_eq!(t.active_streams(), 2);
        // Page 150 is within Δ=64 of both streams (50 from A's 100,
        // 20 from B's 170): the closer stream B absorbs it.
        t.observe(&hot(1, 150));
        t.observe(&hot(1, 148));
        let w = t.observe(&hot(1, 146)).unwrap();
        assert_eq!(w.vpn_history[0], Vpn::new(170));
        assert_eq!(t.active_streams(), 2, "stream A is untouched");
    }

    #[test]
    fn lru_eviction_bumps_generation() {
        let mut t = StreamTrainingTable::new(SttConfig {
            entries: 2,
            history: 4,
            delta_stream: 4,
        })
        .unwrap();
        t.observe(&hot(1, 0));
        t.observe(&hot(1, 1000));
        // A third far-away stream evicts the LRU entry (slot of page 0).
        t.observe(&hot(1, 2000));
        assert_eq!(t.stats().evictions, 1);
        // Complete the recycled stream: its id differs by generation.
        t.observe(&hot(1, 2001));
        t.observe(&hot(1, 2002));
        let w = t.observe(&hot(1, 2003)).unwrap();
        assert_eq!(w.stream.slot(), 0);
        // Build a window in slot 0 again after another eviction cycle
        // and verify the generation moved on.
        let first_gen = w.stream;
        t.observe(&hot(1, 5000)); // evicts slot 1 (page 1000 stream)
        t.observe(&hot(1, 7000)); // evicts slot 0
        t.observe(&hot(1, 7001));
        t.observe(&hot(1, 7002));
        let w2 = t.observe(&hot(1, 7003)).unwrap();
        assert_eq!(w2.stream.slot(), 0);
        assert_ne!(w2.stream, first_gen);
    }

    #[test]
    fn stream_lifecycle_is_recorded() {
        use hopp_obs::TraceSink;
        let mut sink = TraceSink::new(64);
        let mut t = StreamTrainingTable::new(SttConfig {
            entries: 2,
            history: 4,
            delta_stream: 4,
        })
        .unwrap();
        t.observe_rec(&hot(1, 0), &mut sink); // created (slot 0)
        t.observe_rec(&hot(1, 1), &mut sink); // updated
        t.observe_rec(&hot(1, 1000), &mut sink); // created (slot 1)
        t.observe_rec(&hot(1, 2000), &mut sink); // evicts + creates
        let names: Vec<&str> = sink.events().map(|e| e.event.name()).collect();
        assert_eq!(
            names,
            [
                "stream_created",
                "stream_updated",
                "stream_created",
                "stream_evicted",
                "stream_created"
            ]
        );
    }

    #[test]
    fn negative_strides_are_tracked() {
        let mut t = stt(4);
        for v in [100, 97, 94] {
            t.observe(&hot(1, v));
        }
        let w = t.observe(&hot(1, 91)).unwrap();
        assert_eq!(w.stride_history, vec![-3, -3, -3]);
    }
}
