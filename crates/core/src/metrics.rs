//! Prefetch quality metrics — §VI-A of the paper.
//!
//! * **Accuracy** — page hits among prefetched pages / total prefetched
//!   pages.
//! * **Coverage** — prefetch hits / (remote demand requests + prefetch
//!   hits).
//! * **Timeliness** — the gap between a prefetched page's arrival and
//!   its first hit.
//!
//! The same struct measures HoPP (arrival = PTE injection, hit = first
//! access to the injected page) and the baselines (arrival = swapcache
//! insert, hit = swapcache take), so every system is scored by the same
//! definitions.

use hopp_ds::DetMap;
use hopp_obs::{Histogram, HistogramSummary};
use hopp_types::{Nanos, Pid, Vpn};

/// A rendered snapshot of the metrics (what experiments print).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MetricsReport {
    /// Pages prefetched.
    pub prefetched: u64,
    /// Prefetched pages hit at least once.
    pub prefetch_hits: u64,
    /// Demand requests that had to go to remote memory.
    pub demand_remote: u64,
    /// Prefetched pages reclaimed (or replaced) before their first hit.
    pub wasted: u64,
    /// Accuracy per the paper's definition.
    pub accuracy: f64,
    /// Coverage per the paper's definition.
    pub coverage: f64,
    /// Mean timeliness over hit prefetches.
    pub mean_timeliness: Nanos,
    /// Full timeliness distribution (log₂ buckets: p50/p90/p99/max).
    pub timeliness: HistogramSummary,
}

/// Running accuracy/coverage/timeliness accounting.
///
/// # Example
///
/// ```
/// use hopp_core::metrics::PrefetchMetrics;
/// use hopp_types::{Nanos, Pid, Vpn};
///
/// let mut m = PrefetchMetrics::new();
/// m.on_prefetch_arrival(Pid::new(1), Vpn::new(10), Nanos::from_micros(5));
/// m.on_demand_remote();
/// let t = m.on_first_access(Pid::new(1), Vpn::new(10), Nanos::from_micros(50));
/// assert_eq!(t, Some(Nanos::from_micros(45)));
/// let r = m.report();
/// assert_eq!(r.accuracy, 1.0);
/// assert_eq!(r.coverage, 0.5); // one hit, one demand miss
/// ```
#[derive(Clone, Debug, Default)]
pub struct PrefetchMetrics {
    prefetched: u64,
    prefetch_hits: u64,
    demand_remote: u64,
    wasted: u64,
    pending: DetMap<(Pid, Vpn), Nanos>,
    timeliness: Histogram,
}

impl PrefetchMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a prefetched page becoming available at `at`.
    ///
    /// Re-prefetching a page that is still pending resets its arrival
    /// time but counts as a new prefetch (it consumed bandwidth).
    pub fn on_prefetch_arrival(&mut self, pid: Pid, vpn: Vpn, at: Nanos) {
        self.prefetched += 1;
        self.pending.insert((pid, vpn), at);
    }

    /// Records the first application access to a page. If the page was
    /// a pending prefetch this is a *prefetch hit*: returns the
    /// timeliness `T` (access time − arrival time). Subsequent accesses
    /// to the same page return `None`.
    pub fn on_first_access(&mut self, pid: Pid, vpn: Vpn, at: Nanos) -> Option<Nanos> {
        let arrival = self.pending.remove(&(pid, vpn))?;
        self.prefetch_hits += 1;
        let t = at.saturating_since(arrival);
        self.timeliness.record_nanos(t);
        Some(t)
    }

    /// Records a demand request that had to fetch from remote memory
    /// (a major fault).
    pub fn on_demand_remote(&mut self) {
        self.demand_remote += 1;
    }

    /// Records that a pending prefetched page was reclaimed before ever
    /// being hit (it stays counted as prefetched but can no longer hit).
    /// Returns whether a pending prefetch was actually wasted (callers
    /// use this to emit a `PrefetchWasted` event without second-guessing
    /// the bookkeeping).
    pub fn on_evicted_unused(&mut self, pid: Pid, vpn: Vpn) -> bool {
        let was_pending = self.pending.remove(&(pid, vpn)).is_some();
        if was_pending {
            self.wasted += 1;
        }
        was_pending
    }

    /// Accuracy: hits / prefetched (1.0 when nothing was prefetched, so
    /// a disabled prefetcher doesn't read as "inaccurate").
    pub fn accuracy(&self) -> f64 {
        if self.prefetched == 0 {
            1.0
        } else {
            self.prefetch_hits as f64 / self.prefetched as f64
        }
    }

    /// Coverage: hits / (remote demand requests + hits). Zero when
    /// there was no remote traffic at all.
    pub fn coverage(&self) -> f64 {
        let denom = self.demand_remote + self.prefetch_hits;
        if denom == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / denom as f64
        }
    }

    /// Pages prefetched so far.
    pub fn prefetched(&self) -> u64 {
        self.prefetched
    }

    /// Prefetch hits so far.
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits
    }

    /// Remote demand requests so far.
    pub fn demand_remote(&self) -> u64 {
        self.demand_remote
    }

    /// Prefetched pages still waiting for their first hit.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Prefetched pages that were reclaimed or replaced unused.
    pub fn wasted(&self) -> u64 {
        self.wasted
    }

    /// Mean timeliness over all hits (zero when there were none).
    pub fn mean_timeliness(&self) -> Nanos {
        Nanos::from_nanos(self.timeliness.mean().round() as u64)
    }

    /// The full timeliness distribution over all hits.
    pub fn timeliness(&self) -> &Histogram {
        &self.timeliness
    }

    /// Snapshot for reporting.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            prefetched: self.prefetched,
            prefetch_hits: self.prefetch_hits,
            demand_remote: self.demand_remote,
            wasted: self.wasted,
            accuracy: self.accuracy(),
            coverage: self.coverage(),
            mean_timeliness: self.mean_timeliness(),
            timeliness: self.timeliness.summary(),
        }
    }

    /// Merges another metrics object into this one (multi-tier or
    /// multi-app aggregation).
    ///
    /// Pending-map collisions: when both sides have the same `(pid,
    /// vpn)` pending, the entry with the *later* arrival time wins (the
    /// page's state after a re-prefetch) and the earlier one is counted
    /// as wasted — both prefetches consumed bandwidth but at most one
    /// can ever score the first hit. Before this rule, one arrival was
    /// silently overwritten while both stayed counted as prefetched,
    /// understating waste.
    pub fn merge(&mut self, other: &PrefetchMetrics) {
        self.prefetched += other.prefetched;
        self.prefetch_hits += other.prefetch_hits;
        self.demand_remote += other.demand_remote;
        self.wasted += other.wasted;
        self.timeliness.merge(&other.timeliness);
        for (k, v) in &other.pending {
            match self.pending.get_mut(&k) {
                Some(cur) => {
                    self.wasted += 1;
                    if *v > *cur {
                        *cur = *v;
                    }
                }
                None => {
                    self.pending.insert(k, *v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: u64) -> (Pid, Vpn) {
        (Pid::new(1), Vpn::new(v))
    }

    #[test]
    fn accuracy_counts_hits_over_prefetched() {
        let mut m = PrefetchMetrics::new();
        for v in 0..10 {
            let (p, vp) = key(v);
            m.on_prefetch_arrival(p, vp, Nanos::ZERO);
        }
        for v in 0..9 {
            let (p, vp) = key(v);
            assert!(m.on_first_access(p, vp, Nanos::from_micros(1)).is_some());
        }
        assert!((m.accuracy() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn coverage_counts_hits_over_remote_traffic() {
        let mut m = PrefetchMetrics::new();
        let (p, v) = key(1);
        m.on_prefetch_arrival(p, v, Nanos::ZERO);
        m.on_first_access(p, v, Nanos::from_micros(1));
        m.on_demand_remote();
        m.on_demand_remote();
        m.on_demand_remote();
        assert!((m.coverage() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn second_access_is_not_a_second_hit() {
        let mut m = PrefetchMetrics::new();
        let (p, v) = key(1);
        m.on_prefetch_arrival(p, v, Nanos::ZERO);
        assert!(m.on_first_access(p, v, Nanos::from_micros(1)).is_some());
        assert!(m.on_first_access(p, v, Nanos::from_micros(2)).is_none());
        assert_eq!(m.prefetch_hits(), 1);
    }

    #[test]
    fn eviction_wastes_the_prefetch() {
        let mut m = PrefetchMetrics::new();
        let (p, v) = key(1);
        m.on_prefetch_arrival(p, v, Nanos::ZERO);
        m.on_evicted_unused(p, v);
        assert!(m.on_first_access(p, v, Nanos::from_micros(1)).is_none());
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn timeliness_averages_hit_gaps() {
        let mut m = PrefetchMetrics::new();
        for (v, arrive, hit) in [(1u64, 10u64, 30u64), (2, 20, 60)] {
            let (p, vp) = key(v);
            m.on_prefetch_arrival(p, vp, Nanos::from_micros(arrive));
            m.on_first_access(p, vp, Nanos::from_micros(hit));
        }
        // Gaps: 20us and 40us -> mean 30us.
        assert_eq!(m.mean_timeliness(), Nanos::from_micros(30));
    }

    #[test]
    fn empty_metrics_are_benign() {
        let m = PrefetchMetrics::new();
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.mean_timeliness(), Nanos::ZERO);
    }

    #[test]
    fn merge_aggregates() {
        let mut a = PrefetchMetrics::new();
        let mut b = PrefetchMetrics::new();
        let (p, v) = key(1);
        a.on_prefetch_arrival(p, v, Nanos::ZERO);
        a.on_first_access(p, v, Nanos::from_micros(1));
        b.on_demand_remote();
        a.merge(&b);
        let r = a.report();
        assert_eq!(r.prefetch_hits, 1);
        assert_eq!(r.demand_remote, 1);
        assert_eq!(r.coverage, 0.5);
    }

    #[test]
    fn merge_collision_keeps_later_arrival_and_counts_waste() {
        let mut a = PrefetchMetrics::new();
        let mut b = PrefetchMetrics::new();
        let (p, v) = key(1);
        a.on_prefetch_arrival(p, v, Nanos::from_micros(10));
        b.on_prefetch_arrival(p, v, Nanos::from_micros(20));
        a.merge(&b);
        // Both prefetches stay counted, one is already waste.
        assert_eq!(a.prefetched(), 2);
        assert_eq!(a.wasted(), 1);
        assert_eq!(a.pending(), 1);
        // The surviving entry is the later arrival: a hit at t=25us has
        // timeliness 5us, not 15us.
        assert_eq!(
            a.on_first_access(p, v, Nanos::from_micros(25)),
            Some(Nanos::from_micros(5))
        );
        // ... and at most one hit can ever be scored.
        assert!(a.prefetch_hits() <= a.prefetched());
    }

    #[test]
    fn merge_collision_is_orderless_for_the_survivor() {
        let (p, v) = key(1);
        let mut early = PrefetchMetrics::new();
        early.on_prefetch_arrival(p, v, Nanos::from_micros(10));
        let mut late = PrefetchMetrics::new();
        late.on_prefetch_arrival(p, v, Nanos::from_micros(20));
        // Merge in both directions: the later arrival survives either way.
        let mut ab = early.clone();
        ab.merge(&late);
        let mut ba = late;
        ba.merge(&early);
        assert_eq!(
            ab.on_first_access(p, v, Nanos::from_micros(25)),
            ba.on_first_access(p, v, Nanos::from_micros(25)),
        );
        assert_eq!(ab.wasted(), 1);
        assert_eq!(ba.wasted(), 1);
    }

    #[test]
    fn eviction_reports_whether_a_prefetch_was_wasted() {
        let mut m = PrefetchMetrics::new();
        let (p, v) = key(1);
        assert!(!m.on_evicted_unused(p, v), "nothing was pending");
        m.on_prefetch_arrival(p, v, Nanos::ZERO);
        assert!(m.on_evicted_unused(p, v));
        assert_eq!(m.wasted(), 1);
        assert!(!m.on_evicted_unused(p, v), "already removed");
        assert_eq!(m.wasted(), 1);
    }

    #[test]
    fn report_carries_timeliness_percentiles() {
        let mut m = PrefetchMetrics::new();
        for (v, arrive, hit) in [(1u64, 0u64, 10u64), (2, 0, 20), (3, 0, 1_000)] {
            let (p, vp) = key(v);
            m.on_prefetch_arrival(p, vp, Nanos::from_micros(arrive));
            m.on_first_access(p, vp, Nanos::from_micros(hit));
        }
        let r = m.report();
        assert_eq!(r.timeliness.count, 3);
        assert_eq!(r.timeliness.max, 1_000_000);
        assert!(r.timeliness.p50 >= 10_000, "median at least the low gap");
        assert!(r.timeliness.p99 >= r.timeliness.p50);
        assert_eq!(
            Nanos::from_nanos(r.timeliness.mean.round() as u64),
            r.mean_timeliness
        );
    }
}
