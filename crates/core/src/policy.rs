//! The prefetch policy engine — §III-E of the paper.
//!
//! Real-time trace supply lets HoPP tune *how much* and *how far* to
//! prefetch, per stream:
//!
//! * **Prefetch intensity** — pages issued per hot page of an
//!   identified stream (1 by default; more when the network is the
//!   bottleneck for the stream's access rate).
//! * **Prefetch offset** `i` — how far ahead along the pattern to
//!   fetch. HoPP measures the *timeliness* `T` of each prefetched page
//!   (arrival → first hit) and steers `i` to keep `T` inside
//!   `[T_min, T_max]`: too small a `T` risks late pages (`i ×= 1+α`);
//!   too large a `T` wastes local memory (`i ×= 1−α`). Defaults:
//!   `α = 0.2`, `i ≤ 1K`, `T_min = 40 µs`, `T_max = 5 ms`.

use std::collections::BTreeMap;

use hopp_types::{Nanos, Pid, Vpn};

use crate::stt::{StreamId, StreamWindow};
use crate::three_tier::{Prediction, Tier};

/// Huge-page batching (§IV of the paper): once a stream has proven
/// itself long enough, swap 512 consecutive future pages with one
/// prefetch request instead of page-by-page fetches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HugeBatchConfig {
    /// Stream confirmations (classified windows) required before
    /// batching kicks in.
    pub min_confirmations: u32,
    /// Pages per batch (512 = one 2 MB huge page).
    pub batch_pages: u32,
}

impl Default for HugeBatchConfig {
    fn default() -> Self {
        HugeBatchConfig {
            min_confirmations: 64,
            batch_pages: 512,
        }
    }
}

/// Policy-engine parameters (paper defaults).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PolicyConfig {
    /// Pages issued per classified hot page.
    pub intensity: u32,
    /// Multiplicative offset adjustment step `α`.
    pub alpha: f64,
    /// Offset ceiling `i_max`.
    pub max_offset: f64,
    /// Lower timeliness bound `T_min`.
    pub t_min: Nanos,
    /// Upper timeliness bound `T_max`.
    pub t_max: Nanos,
    /// When `Some(i)`, the offset is pinned to `i` and timeliness
    /// feedback is ignored (the "HoPP (offset=1)" / "(offset=20K)"
    /// configurations of Fig 22).
    pub fixed_offset: Option<f64>,
    /// Optional huge-page batching for proven long stride-1 streams
    /// (§IV, disabled by default as in the paper's prototype).
    pub huge_batch: Option<HugeBatchConfig>,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            intensity: 1,
            alpha: 0.2,
            max_offset: 1024.0,
            t_min: Nanos::from_micros(40),
            t_max: Nanos::from_millis(5),
            fixed_offset: None,
            huge_batch: None,
        }
    }
}

impl PolicyConfig {
    /// A policy with the offset pinned (disables timeliness feedback).
    pub fn fixed_offset(i: f64) -> Self {
        PolicyConfig {
            fixed_offset: Some(i),
            ..Default::default()
        }
    }

    /// A policy with default huge-page batching enabled.
    pub fn with_huge_batch() -> Self {
        PolicyConfig {
            huge_batch: Some(HugeBatchConfig::default()),
            ..Default::default()
        }
    }
}

/// One prefetch decision from the policy engine: `span` consecutive
/// pages starting at `vpn` (span is 1 except for huge-page batches).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PolicyOrder {
    /// Owning process.
    pub pid: Pid,
    /// First target page.
    pub vpn: Vpn,
    /// Number of consecutive pages to fetch in one request.
    pub span: u32,
    /// The stream the decision came from (routes timeliness feedback).
    pub stream: StreamId,
    /// The tier that classified the stream (per-tier metrics).
    pub tier: Tier,
}

/// Policy counters.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct PolicyStats {
    /// Orders emitted.
    pub orders: u64,
    /// Timeliness samples below `T_min` (offset increased).
    pub too_late: u64,
    /// Timeliness samples above `T_max` (offset decreased).
    pub too_early: u64,
}

/// The policy engine: per-stream offset state plus the two knobs.
#[derive(Clone, Debug)]
pub struct PolicyEngine {
    config: PolicyConfig,
    offsets: BTreeMap<StreamId, f64>,
    /// Classified windows seen per stream (huge-batch qualification).
    confirmations: BTreeMap<StreamId, u32>,
    /// First page not yet covered by an issued batch, per stream.
    batched_until: BTreeMap<StreamId, u64>,
    stats: PolicyStats,
}

impl PolicyEngine {
    /// Creates an engine with the given knobs.
    pub fn new(config: PolicyConfig) -> Self {
        PolicyEngine {
            config,
            offsets: BTreeMap::new(),
            confirmations: BTreeMap::new(),
            batched_until: BTreeMap::new(),
            stats: PolicyStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> PolicyConfig {
        self.config
    }

    /// The current offset for a stream (starts at 1).
    pub fn offset_of(&self, stream: StreamId) -> f64 {
        self.config
            .fixed_offset
            .unwrap_or_else(|| self.offsets.get(&stream).copied().unwrap_or(1.0))
    }

    /// Turns a tier prediction into concrete orders: `intensity` pages
    /// at offsets `i, i+1, …` along the pattern — or, for a proven long
    /// stride-1 stream with huge batching enabled, one span-512 order.
    pub fn finalize(&mut self, window: &StreamWindow, prediction: Prediction) -> Vec<PolicyOrder> {
        if let Some(orders) = self.try_huge_batch(window, prediction) {
            self.stats.orders += orders.len() as u64;
            return orders;
        }
        let base = self.offset_of(window.stream).round().max(1.0) as i64;
        let vpn_a = window.vpn_a();
        let mut orders = Vec::with_capacity(self.config.intensity as usize);
        for j in 0..i64::from(self.config.intensity) {
            if let Some(vpn) = prediction.target(vpn_a, base + j) {
                orders.push(PolicyOrder {
                    pid: window.pid,
                    vpn,
                    span: 1,
                    stream: window.stream,
                    tier: prediction.tier(),
                });
            }
        }
        self.stats.orders += orders.len() as u64;
        orders
    }

    /// §IV: long stride-1 streams are served in 2 MB batches. Returns
    /// `Some` when batching takes over order generation for this window
    /// (possibly with no orders, when the stream is already covered).
    fn try_huge_batch(
        &mut self,
        window: &StreamWindow,
        prediction: Prediction,
    ) -> Option<Vec<PolicyOrder>> {
        let hb = self.config.huge_batch?;
        // Only unit-stride forward streams map onto a contiguous 2 MB
        // region worth of future pages.
        let unit_stride = matches!(
            prediction,
            Prediction::Simple { stride: 1 } | Prediction::Ripple
        );
        if !unit_stride {
            return None;
        }
        let count = self.confirmations.entry(window.stream).or_insert(0);
        *count += 1;
        if *count < hb.min_confirmations {
            return None;
        }
        let vpn_a = window.vpn_a().raw();
        let covered = self
            .batched_until
            .get(&window.stream)
            .copied()
            .unwrap_or(vpn_a + 1);
        // Re-batch when consumption approaches the covered frontier.
        let lookahead = u64::from(hb.batch_pages) / 4;
        if vpn_a + lookahead < covered {
            return Some(Vec::new());
        }
        let start = covered.max(vpn_a + 1);
        self.batched_until
            .insert(window.stream, start + u64::from(hb.batch_pages));
        Some(vec![PolicyOrder {
            pid: window.pid,
            vpn: Vpn::new(start),
            span: hb.batch_pages,
            stream: window.stream,
            tier: prediction.tier(),
        }])
    }

    /// Feeds back the measured timeliness of a prefetched page of
    /// `stream`, steering its offset (§III-E).
    pub fn record_timeliness(&mut self, stream: StreamId, t: Nanos) {
        if self.config.fixed_offset.is_some() {
            return;
        }
        let entry = self.offsets.entry(stream).or_insert(1.0);
        if t < self.config.t_min {
            *entry = (*entry * (1.0 + self.config.alpha)).min(self.config.max_offset);
            self.stats.too_late += 1;
        } else if t > self.config.t_max {
            *entry = (*entry * (1.0 - self.config.alpha)).max(1.0);
            self.stats.too_early += 1;
        }
    }

    /// Forgets the offset state of streams no longer in the STT (called
    /// occasionally to bound memory).
    pub fn retain_streams(&mut self, keep: impl Fn(StreamId) -> bool) {
        self.offsets.retain(|s, _| keep(*s));
        self.confirmations.retain(|s, _| keep(*s));
        self.batched_until.retain(|s, _| keep(*s));
    }

    /// Policy counters.
    pub fn stats(&self) -> PolicyStats {
        self.stats
    }

    /// Streams with live policy state (offset, confirmations or batch
    /// frontier) — bounded by the STT size once pruning runs.
    pub fn tracked_streams(&self) -> usize {
        let mut ids: std::collections::BTreeSet<&StreamId> = self.offsets.keys().collect();
        ids.extend(self.confirmations.keys());
        ids.extend(self.batched_until.keys());
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stt::{StreamId, StreamWindow};

    fn sid(slot: u16) -> StreamId {
        // StreamId's fields are private to stt; build one through a
        // window produced by a tiny STT instead.
        let mut stt = crate::stt::StreamTrainingTable::new(crate::stt::SttConfig {
            history: 4,
            ..Default::default()
        })
        .unwrap();
        let mut last = None;
        for k in 0..4u64 {
            last = stt.observe(&hopp_types::HotPage {
                pid: Pid::new(slot + 1),
                vpn: Vpn::new(1_000 * u64::from(slot + 1) + k),
                flags: hopp_types::PageFlags::default(),
                at: Nanos::ZERO,
            });
        }
        last.unwrap().stream
    }

    fn window(stream: StreamId) -> StreamWindow {
        StreamWindow {
            stream,
            pid: Pid::new(1),
            vpn_history: vec![Vpn::new(100), Vpn::new(102), Vpn::new(104), Vpn::new(106)],
            stride_history: vec![2, 2, 2],
            at: Nanos::ZERO,
        }
    }

    #[test]
    fn default_offset_is_one() {
        let mut pe = PolicyEngine::new(PolicyConfig::default());
        let s = sid(0);
        let orders = pe.finalize(&window(s), Prediction::Simple { stride: 2 });
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0].vpn, Vpn::new(108), "VPN_A + 1*stride");
        assert_eq!(orders[0].tier, Tier::Simple);
    }

    #[test]
    fn late_pages_push_offset_up() {
        let mut pe = PolicyEngine::new(PolicyConfig::default());
        let s = sid(0);
        for _ in 0..4 {
            pe.record_timeliness(s, Nanos::from_micros(10)); // < T_min
        }
        // 1.0 * 1.2^4 ≈ 2.07 → rounds to 2.
        let orders = pe.finalize(&window(s), Prediction::Simple { stride: 2 });
        assert_eq!(orders[0].vpn, Vpn::new(110), "VPN_A + 2*stride");
        assert_eq!(pe.stats().too_late, 4);
    }

    #[test]
    fn early_pages_pull_offset_down_to_floor() {
        let mut pe = PolicyEngine::new(PolicyConfig::default());
        let s = sid(0);
        for _ in 0..10 {
            pe.record_timeliness(s, Nanos::from_micros(10));
        }
        let up = pe.offset_of(s);
        assert!(up > 2.0);
        for _ in 0..100 {
            pe.record_timeliness(s, Nanos::from_secs(1)); // > T_max
        }
        assert_eq!(pe.offset_of(s), 1.0, "offset floors at 1");
        assert!(pe.stats().too_early >= 10);
    }

    #[test]
    fn offset_is_capped_at_max() {
        let mut pe = PolicyEngine::new(PolicyConfig::default());
        let s = sid(0);
        for _ in 0..100 {
            pe.record_timeliness(s, Nanos::ZERO);
        }
        assert_eq!(pe.offset_of(s), 1024.0);
    }

    #[test]
    fn in_band_timeliness_changes_nothing() {
        let mut pe = PolicyEngine::new(PolicyConfig::default());
        let s = sid(0);
        pe.record_timeliness(s, Nanos::from_micros(100)); // in [40us, 5ms]
        assert_eq!(pe.offset_of(s), 1.0);
        assert_eq!(pe.stats().too_late + pe.stats().too_early, 0);
    }

    #[test]
    fn fixed_offset_ignores_feedback() {
        let mut pe = PolicyEngine::new(PolicyConfig::fixed_offset(20_000.0));
        let s = sid(0);
        pe.record_timeliness(s, Nanos::ZERO);
        assert_eq!(pe.offset_of(s), 20_000.0);
        let orders = pe.finalize(&window(s), Prediction::Ripple);
        assert_eq!(orders[0].vpn, Vpn::new(106 + 20_000));
    }

    #[test]
    fn intensity_issues_consecutive_offsets() {
        let mut pe = PolicyEngine::new(PolicyConfig {
            intensity: 3,
            ..Default::default()
        });
        let s = sid(0);
        let orders = pe.finalize(&window(s), Prediction::Simple { stride: 2 });
        let vpns: Vec<u64> = orders.iter().map(|o| o.vpn.raw()).collect();
        assert_eq!(vpns, vec![108, 110, 112]);
    }

    /// Two distinct streams trained in one table.
    fn two_streams() -> (StreamId, StreamId) {
        let mut stt = crate::stt::StreamTrainingTable::new(crate::stt::SttConfig {
            history: 4,
            ..Default::default()
        })
        .unwrap();
        let mut ids = Vec::new();
        for base in [1_000u64, 900_000] {
            let mut last = None;
            for k in 0..4u64 {
                last = stt.observe(&hopp_types::HotPage {
                    pid: Pid::new(1),
                    vpn: Vpn::new(base + k),
                    flags: hopp_types::PageFlags::default(),
                    at: Nanos::ZERO,
                });
            }
            ids.push(last.unwrap().stream);
        }
        (ids[0], ids[1])
    }

    #[test]
    fn huge_batch_takes_over_after_confirmations() {
        let mut pe = PolicyEngine::new(PolicyConfig {
            huge_batch: Some(HugeBatchConfig {
                min_confirmations: 3,
                batch_pages: 512,
            }),
            ..Default::default()
        });
        let s = sid(0);
        let w = |last: u64| StreamWindow {
            stream: s,
            pid: Pid::new(1),
            vpn_history: vec![
                Vpn::new(last - 3),
                Vpn::new(last - 2),
                Vpn::new(last - 1),
                Vpn::new(last),
            ],
            stride_history: vec![1, 1, 1],
            at: Nanos::ZERO,
        };
        // First two confirmations: plain single-page orders.
        for k in 0..2u64 {
            let o = pe.finalize(&w(1_000 + k), Prediction::Simple { stride: 1 });
            assert_eq!(o.len(), 1);
            assert_eq!(o[0].span, 1);
        }
        // Third: one 512-page batch starting right after VPN_A.
        let o = pe.finalize(&w(1_002), Prediction::Simple { stride: 1 });
        assert_eq!(o.len(), 1);
        assert_eq!(o[0].span, 512);
        assert_eq!(o[0].vpn, Vpn::new(1_003));
        // While consumption is far from the frontier: nothing issued.
        let o = pe.finalize(&w(1_003), Prediction::Simple { stride: 1 });
        assert!(o.is_empty());
        // Approaching the frontier (within batch/4): the next batch.
        let o = pe.finalize(&w(1_003 + 512 - 100), Prediction::Simple { stride: 1 });
        assert_eq!(o.len(), 1);
        assert_eq!(o[0].vpn, Vpn::new(1_003 + 512));
        assert_eq!(o[0].span, 512);
    }

    #[test]
    fn huge_batch_ignores_non_unit_strides() {
        let mut pe = PolicyEngine::new(PolicyConfig {
            huge_batch: Some(HugeBatchConfig {
                min_confirmations: 1,
                batch_pages: 512,
            }),
            ..Default::default()
        });
        let s = sid(0);
        let o = pe.finalize(&window(s), Prediction::Simple { stride: 2 });
        assert_eq!(o.len(), 1);
        assert_eq!(o[0].span, 1, "stride-2 streams are not batchable");
    }

    #[test]
    fn per_stream_offsets_are_independent() {
        let mut pe = PolicyEngine::new(PolicyConfig::default());
        let (a, b) = two_streams();
        assert_ne!(a, b);
        for _ in 0..5 {
            pe.record_timeliness(a, Nanos::ZERO);
        }
        assert!(pe.offset_of(a) > 1.0);
        assert_eq!(pe.offset_of(b), 1.0);
        pe.retain_streams(|s| s == b);
        assert_eq!(pe.offset_of(a), 1.0, "state dropped");
    }
}
