//! A Markov (address-correlation) prefetcher over the hot-page trace.
//!
//! §III-D notes that the full memory trace enables prefetch designs
//! beyond the three-tier heuristics, "like machine learning-based
//! ones". This module provides the classic first step on that path: a
//! first-order Markov predictor (Joseph & Grunwald-style, at hot-page
//! granularity). It learns `page → likely-next-page` transitions from
//! the trace and, on every hot page, walks the most-recent transition
//! chain `depth` pages ahead.
//!
//! Correlation prefetching needs *history*: it only predicts
//! re-occurring sequences, so it shines on repeated irregular traversals
//! (graph iterations) and does nothing on first-visit streaming — the
//! opposite trade-off of the stride-based tiers. The
//! `experiments markov` target compares the two.

use hopp_ds::DetMap;
use hopp_types::{HotPage, Nanos, Pid, Vpn};

use crate::engine::PrefetchOrder;
use crate::stt::StreamId;
use crate::three_tier::Tier;

/// Markov predictor parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MarkovConfig {
    /// Successors remembered per page (MRU-ordered).
    pub fanout: usize,
    /// Chain length walked per hot page (pages prefetched).
    pub depth: u32,
    /// Maximum transition-table entries (hardware-budget bound); new
    /// pages stop being learned beyond this.
    pub max_entries: usize,
}

impl Default for MarkovConfig {
    fn default() -> Self {
        MarkovConfig {
            fanout: 2,
            depth: 4,
            max_entries: 1 << 20,
        }
    }
}

/// Markov-engine counters.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct MarkovStats {
    /// Transitions recorded.
    pub transitions: u64,
    /// Orders emitted.
    pub predictions: u64,
    /// Hot pages with no learned successor.
    pub cold_lookups: u64,
}

/// The Markov trace trainer. Drop-in alternative to
/// [`crate::HoppEngine`]'s three-tier stack (select it with
/// [`crate::engine::TrainerKind::Markov`]).
#[derive(Clone, Debug)]
pub struct MarkovEngine {
    config: MarkovConfig,
    /// MRU-ordered successor lists.
    table: DetMap<(Pid, Vpn), Vec<Vpn>>,
    /// Last hot page seen per process.
    last: DetMap<Pid, Vpn>,
    stats: MarkovStats,
}

impl MarkovEngine {
    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` or `depth` is zero.
    pub fn new(config: MarkovConfig) -> Self {
        assert!(config.fanout >= 1, "fanout must be at least 1");
        assert!(config.depth >= 1, "depth must be at least 1");
        MarkovEngine {
            config,
            table: DetMap::new(),
            last: DetMap::new(),
            stats: MarkovStats::default(),
        }
    }

    /// All Markov orders are attributed to one synthetic stream (the
    /// predictor has no stream notion; timeliness feedback is a no-op).
    fn stream_id() -> StreamId {
        StreamId {
            slot: u16::MAX,
            generation: 0,
        }
    }

    /// Learns the transition and predicts along the MRU chain.
    pub fn on_hot_page(&mut self, hot: &HotPage) -> Vec<PrefetchOrder> {
        // Learn: previous hot page of this process leads to this one.
        if let Some(prev) = self.last.insert(hot.pid, hot.vpn) {
            if prev != hot.vpn {
                let at_capacity = self.table.len() >= self.config.max_entries;
                if let Some(successors) = self.table.get_mut(&(hot.pid, prev)) {
                    successors.retain(|v| *v != hot.vpn);
                    successors.insert(0, hot.vpn);
                    successors.truncate(self.config.fanout);
                    self.stats.transitions += 1;
                } else if !at_capacity {
                    self.table.insert((hot.pid, prev), vec![hot.vpn]);
                    self.stats.transitions += 1;
                }
            }
        }

        // Predict: walk the most-recent successor chain.
        let mut orders = Vec::new();
        let mut cursor = hot.vpn;
        let mut seen = vec![hot.vpn];
        for _ in 0..self.config.depth {
            let Some(successors) = self.table.get(&(hot.pid, cursor)) else {
                break;
            };
            let Some(&next) = successors.iter().find(|v| !seen.contains(v)) else {
                break;
            };
            orders.push(PrefetchOrder {
                pid: hot.pid,
                vpn: next,
                span: 1,
                stream: Self::stream_id(),
                tier: Tier::Simple,
            });
            seen.push(next);
            cursor = next;
        }
        if orders.is_empty() {
            self.stats.cold_lookups += 1;
        }
        self.stats.predictions += orders.len() as u64;
        orders
    }

    /// Timeliness feedback is not used by the Markov predictor.
    pub fn on_timeliness(&mut self, _stream: StreamId, _t: Nanos) {}

    /// Counters.
    pub fn stats(&self) -> MarkovStats {
        self.stats
    }

    /// Learned transition entries.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopp_types::PageFlags;

    fn hot(pid: u16, vpn: u64) -> HotPage {
        HotPage {
            pid: Pid::new(pid),
            vpn: Vpn::new(vpn),
            flags: PageFlags::default(),
            at: Nanos::ZERO,
        }
    }

    fn feed(m: &mut MarkovEngine, seq: &[u64]) -> Vec<Vec<u64>> {
        seq.iter()
            .map(|&v| {
                m.on_hot_page(&hot(1, v))
                    .into_iter()
                    .map(|o| o.vpn.raw())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn first_pass_is_cold_second_pass_predicts() {
        let mut m = MarkovEngine::new(MarkovConfig::default());
        let seq = [10u64, 95, 12, 40, 7];
        let first = feed(&mut m, &seq);
        assert!(first.iter().all(|o| o.is_empty()), "nothing learned yet");
        // Second traversal of the same irregular sequence: each page
        // predicts the chain ahead.
        let second = feed(&mut m, &seq);
        // After re-seeing 95, the chain 12 -> 40 -> 7 is known (the
        // wrap-around transition 7 -> 10 may extend it).
        assert_eq!(&second[1][..3], &[12, 40, 7]);
        assert_eq!(&second[2][..2], &[40, 7]);
    }

    #[test]
    fn mru_successor_wins_on_divergence() {
        let mut m = MarkovEngine::new(MarkovConfig::default());
        feed(&mut m, &[1, 2]);
        feed(&mut m, &[1, 3]); // newer transition 1 -> 3
        let out = m.on_hot_page(&hot(1, 1));
        assert_eq!(out[0].vpn, Vpn::new(3));
    }

    #[test]
    fn fanout_bounds_successor_lists() {
        let mut m = MarkovEngine::new(MarkovConfig {
            fanout: 2,
            ..Default::default()
        });
        for next in [2u64, 3, 4, 5] {
            feed(&mut m, &[1, next]);
        }
        // Only the two most recent successors survive.
        let out = m.on_hot_page(&hot(1, 1));
        assert_eq!(out[0].vpn, Vpn::new(5));
    }

    #[test]
    fn processes_do_not_share_transitions() {
        let mut m = MarkovEngine::new(MarkovConfig::default());
        feed(&mut m, &[1, 2]);
        m.on_hot_page(&hot(2, 1));
        let out = m.on_hot_page(&hot(2, 1));
        assert!(out.is_empty(), "pid 2 never saw 1 -> 2");
    }

    #[test]
    fn chains_do_not_loop() {
        let mut m = MarkovEngine::new(MarkovConfig {
            depth: 8,
            ..Default::default()
        });
        // A tight cycle 1 -> 2 -> 1 ...
        feed(&mut m, &[1, 2, 1, 2, 1]);
        let out = m.on_hot_page(&hot(1, 2));
        // The chain stops rather than ping-ponging forever.
        assert!(out.len() <= 2, "{out:?}");
    }

    #[test]
    fn capacity_stops_learning_new_keys() {
        let mut m = MarkovEngine::new(MarkovConfig {
            max_entries: 2,
            ..Default::default()
        });
        feed(&mut m, &[1, 2, 3, 4, 5]); // would need 4 entries
        assert_eq!(m.table_len(), 2);
        // Existing keys keep updating.
        feed(&mut m, &[1, 9]);
        let out = m.on_hot_page(&hot(1, 1));
        assert_eq!(out[0].vpn, Vpn::new(9));
    }
}
