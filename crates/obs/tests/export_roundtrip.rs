//! Round-trip tests for the hand-rolled exporters and a property test
//! pinning `Histogram::quantile` to an exact sorted-vector reference.
//!
//! The exporters render JSON by hand (the build is offline, no serde),
//! so nothing in the unit tests proves the output *parses*. Here a
//! small recursive-descent parser reads every JSONL line back and
//! checks the values and the key order against the events that
//! produced them — key order is part of the determinism contract
//! (byte-stable output diffs cleanly between runs).

use hopp_obs::{events_to_jsonl, Event, TimedEvent};
use hopp_types::rng::SplitMix64;
use hopp_types::{Nanos, Pid, Ppn, Vpn};

/// Parses one flat JSON object (`{"k":v,…}`, values numeric, boolean
/// or plain strings — exactly the exporters' output grammar) into
/// `(key, raw-value)` pairs in textual order. Panics on malformed
/// input: a parse failure *is* the test failure.
fn parse_flat_object(line: &str) -> Vec<(String, String)> {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or_else(|| panic!("not an object: {line}"));
    let mut pairs = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let after_quote = rest
            .strip_prefix('"')
            .unwrap_or_else(|| panic!("key must open with a quote: {rest}"));
        let close = after_quote.find('"').expect("unterminated key");
        let key = &after_quote[..close];
        let after_colon = after_quote[close + 1..]
            .strip_prefix(':')
            .unwrap_or_else(|| panic!("missing colon after key {key}"));
        let (value, tail) = if let Some(s) = after_colon.strip_prefix('"') {
            let end = s.find('"').expect("unterminated string value");
            (s[..end].to_string(), &s[end + 1..])
        } else {
            let end = after_colon.find(',').unwrap_or(after_colon.len());
            (after_colon[..end].to_string(), &after_colon[end..])
        };
        assert!(!value.is_empty(), "empty value for key {key}");
        pairs.push((key.to_string(), value));
        rest = tail.strip_prefix(',').unwrap_or(tail);
    }
    pairs
}

fn sample_events() -> Vec<TimedEvent> {
    vec![
        TimedEvent {
            at: Nanos::from_nanos(100),
            event: Event::HpdHot { ppn: Ppn::new(7) },
        },
        TimedEvent {
            at: Nanos::from_nanos(250),
            event: Event::RptMiss {
                ppn: Ppn::new(7),
                resolved: true,
            },
        },
        TimedEvent {
            at: Nanos::from_nanos(999),
            event: Event::MinorFault {
                pid: Pid::new(3),
                vpn: Vpn::new(41),
            },
        },
        TimedEvent {
            at: Nanos::from_nanos(5_000),
            event: Event::MajorFault {
                pid: Pid::new(3),
                vpn: Vpn::new(42),
                latency: Nanos::from_nanos(1_500),
            },
        },
    ]
}

#[test]
fn jsonl_round_trips_with_deterministic_key_order() {
    let events = sample_events();
    let out = events_to_jsonl(&events);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), events.len());
    for (line, e) in lines.iter().zip(&events) {
        let pairs = parse_flat_object(line);
        // Key order is fixed: the envelope triple first, args after.
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(&keys[..3], ["ts", "component", "event"], "line: {line}");
        // No key appears twice.
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "duplicate key in: {line}");
        // The values parse back to what produced them.
        assert_eq!(pairs[0].1, e.at.as_nanos().to_string());
        assert_eq!(pairs[1].1, e.event.component().label());
        assert_eq!(pairs[2].1, e.event.name());
    }
    // Same input, same bytes — the other half of the contract.
    assert_eq!(out, events_to_jsonl(&events));
}

#[test]
fn jsonl_args_carry_the_event_payload() {
    let out = events_to_jsonl(&sample_events());
    let lines: Vec<&str> = out.lines().collect();
    let hot = parse_flat_object(lines[0]);
    assert!(hot.contains(&("ppn".to_string(), "7".to_string())));
    let miss = parse_flat_object(lines[1]);
    assert!(miss.contains(&("resolved".to_string(), "true".to_string())));
    let major = parse_flat_object(lines[3]);
    assert!(major.contains(&("latency_ns".to_string(), "1500".to_string())));
}

/// Exact reference for `Histogram::quantile`: the rank-th smallest
/// sample's octave upper bound, clamped to the exact max — computed
/// from the sorted sample vector instead of bucket counters.
fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    let x = sorted[(rank - 1) as usize];
    let upper = if x == 0 {
        0
    } else {
        let bits = 64 - x.leading_zeros();
        (1u64 << bits) - 1
    };
    upper.min(*sorted.last().expect("non-empty"))
}

#[test]
fn quantile_matches_sorted_vector_reference_across_bucket_boundaries() {
    let mut rng = SplitMix64::seed_from_u64(0xb0c);
    let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
    for round in 0..200 {
        let len = rng.gen_range(1..65) as usize;
        let mut samples = Vec::with_capacity(len);
        for _ in 0..len {
            // Mix octave-boundary values (2^k - 1, 2^k, 2^k + 1) with
            // uniform draws; boundaries are where bucket placement and
            // the rank scan can disagree by one.
            let v = match rng.gen_range(0..4) {
                0 => {
                    let k = rng.gen_range(0..62);
                    (1u64 << k).saturating_sub(1)
                }
                1 => 1u64 << rng.gen_range(0..62),
                2 => (1u64 << rng.gen_range(0..62)) + 1,
                _ => rng.gen_range(0..1 << 40),
            };
            samples.push(v);
        }
        let mut hist = hopp_obs::Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        samples.sort_unstable();
        for &q in &qs {
            let got = hist.quantile(q);
            let want = reference_quantile(&samples, q);
            assert_eq!(
                got, want,
                "round {round}: q={q} over {samples:?} (got {got}, want {want})"
            );
            // The octave guarantee itself: never below the true
            // quantile, less than one power of two above it.
            let n = samples.len() as u64;
            let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
            let exact = samples[(rank - 1) as usize];
            assert!(got >= exact, "round {round}: {got} < exact {exact}");
            assert!(
                got < exact.saturating_mul(2).max(1) || got == 0,
                "round {round}: {got} more than an octave above {exact}"
            );
        }
        // A random q exercises ranks the fixed grid misses.
        let q = rng.next_f64();
        assert_eq!(hist.quantile(q), reference_quantile(&samples, q));
    }
}
