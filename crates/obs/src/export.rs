//! Trace exporters: JSONL and Chrome trace-event JSON.
//!
//! Both formats are rendered by hand (the build environment has no
//! crates.io access for `serde`); every value written is numeric,
//! boolean or a static identifier, so the JSON stays trivially valid
//! and — important for the determinism guarantee — byte-stable across
//! runs with the same seed.

use std::fmt::Write as _;

use crate::event::{Component, TimedEvent};

/// Renders events as JSON Lines: one self-contained JSON object per
/// line, in recording order. The stable, greppable format for diffing
/// two runs or piping into `jq`.
pub fn events_to_jsonl(events: &[TimedEvent]) -> String {
    let _prof = hopp_prof::span("obs/export");
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        let _ = write!(
            out,
            "{{\"ts\":{},\"component\":\"{}\",\"event\":\"{}\"",
            e.at.as_nanos(),
            e.event.component().label(),
            e.event.name()
        );
        e.event.write_args_json(&mut out);
        out.push_str("}\n");
    }
    out
}

/// Renders events as a Chrome trace-event file (JSON object format),
/// openable in `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// * One process ("hoppsim"), one thread per [`Component`], named via
///   `thread_name` metadata.
/// * Interval events ([`crate::Event::duration`]) become complete
///   (`"ph":"X"`) slices starting at `at - duration`; the rest are
///   instants (`"ph":"i"`).
/// * `ts`/`dur` are microseconds with nanosecond precision (Chrome's
///   unit), written as fixed 3-decimal strings so output is byte-stable.
/// * All non-metadata entries are sorted by start time, so `ts` is
///   globally (hence per-track) non-decreasing even though interval
///   events are *recorded* at their end.
pub fn events_to_chrome_trace(events: &[TimedEvent]) -> String {
    events_to_chrome_trace_with_extra(events, "")
}

/// [`events_to_chrome_trace`] with a pre-rendered fragment of extra
/// trace entries spliced in before the closing bracket — the hook the
/// harness uses to merge host-side profiler spans
/// (`hopp_prof::ProfReport::chrome_trace_fragment`) onto the simulated
/// timeline as a second process.
///
/// `extra` must be either empty or a comma-separated sequence of JSON
/// trace-event objects *without* leading/trailing separators.
pub fn events_to_chrome_trace_with_extra(events: &[TimedEvent], extra: &str) -> String {
    let _prof = hopp_prof::span("obs/export");
    // (start_ns, dur_ns, event) — sort by start for monotonic ts.
    let mut slices: Vec<(u64, u64, &TimedEvent)> = events
        .iter()
        .map(|e| match e.event.duration() {
            Some(d) => (
                e.at.as_nanos().saturating_sub(d.as_nanos()),
                d.as_nanos(),
                e,
            ),
            None => (e.at.as_nanos(), 0, e),
        })
        .collect();
    slices.sort_by_key(|&(start, _, _)| start);

    let mut out = String::with_capacity(events.len() * 160 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for c in Component::ALL {
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            c.tid(),
            c.label()
        );
    }
    for (start_ns, dur_ns, e) in slices {
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":",
            e.event.name(),
            e.event.component().tid()
        );
        write_us(&mut out, start_ns);
        if e.event.duration().is_some() {
            out.push_str(",\"ph\":\"X\",\"dur\":");
            write_us(&mut out, dur_ns);
        } else {
            out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{\"ts_ns\":");
        let _ = write!(out, "{}", e.at.as_nanos());
        e.event.write_args_json(&mut out);
        out.push_str("}}");
    }
    if !extra.is_empty() {
        push_sep(&mut out, &mut first);
        out.push_str(extra);
    }
    out.push_str("]}");
    out
}

/// Writes `ns` as microseconds with exactly 3 decimals (ns precision).
fn write_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use hopp_types::{Nanos, Pid, Vpn};

    fn sample_events() -> Vec<TimedEvent> {
        vec![
            TimedEvent {
                at: Nanos::from_nanos(5_000),
                // Interval event recorded at its end; starts at 2000 ns.
                event: Event::MajorFault {
                    pid: Pid::new(1),
                    vpn: Vpn::new(7),
                    latency: Nanos::from_nanos(3_000),
                },
            },
            TimedEvent {
                at: Nanos::from_nanos(1_000),
                event: Event::MinorFault {
                    pid: Pid::new(1),
                    vpn: Vpn::new(8),
                },
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let out = events_to_jsonl(&sample_events());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(lines[0].contains("\"ts\":5000"));
        assert!(lines[0].contains("\"event\":\"major_fault\""));
        assert!(lines[1].contains("\"component\":\"kernel\""));
    }

    #[test]
    fn chrome_trace_sorts_by_start_time() {
        let out = events_to_chrome_trace(&sample_events());
        // The minor fault (instant at 1000 ns = ts 1.000) must come
        // before the major fault slice (starts 2000 ns = ts 2.000),
        // even though the major fault was recorded first.
        let minor = out.find("\"minor_fault\"").unwrap();
        let major = out.find("\"major_fault\"").unwrap();
        assert!(minor < major);
        assert!(out.contains("\"ts\":1.000"));
        assert!(out.contains("\"ts\":2.000,\"ph\":\"X\",\"dur\":3.000"));
    }

    #[test]
    fn chrome_trace_names_every_track() {
        let out = events_to_chrome_trace(&[]);
        for c in Component::ALL {
            assert!(out.contains(&format!("\"name\":\"{}\"", c.label())));
        }
        assert!(out.starts_with('{') && out.ends_with('}'));
    }

    #[test]
    fn exports_are_deterministic() {
        let events = sample_events();
        assert_eq!(events_to_jsonl(&events), events_to_jsonl(&events));
        assert_eq!(
            events_to_chrome_trace(&events),
            events_to_chrome_trace(&events)
        );
    }
}
