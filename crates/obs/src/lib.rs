#![warn(missing_docs)]
//! Observability for the HoPP simulation stack.
//!
//! The paper's own methodology is built on *seeing* the memory system:
//! HMTT snoops the DIMM bus for the full access stream, and the
//! evaluation hinges on accuracy/coverage/timeliness *distributions*,
//! not means. This crate gives the reproduction the same visibility:
//!
//! * a typed [`Event`] stream covering the whole pipeline (HPD hot-page
//!   emission, RPT cache traffic, STT stream life cycle, tier
//!   decisions, the prefetch issue→arrival→hit/waste life cycle, fault
//!   classification, reclaim, RDMA ops), each stamped with simulated
//!   [`Nanos`];
//! * log₂-bucketed [`Histogram`]s with p50/p90/p99/max summaries for
//!   the latency-shaped quantities (major-fault latency, prefetch
//!   timeliness, inflight waits, RDMA op latency);
//! * exporters: a JSONL event dump and a Chrome trace-event file
//!   openable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev),
//!   with one track per component.
//!
//! Everything routes through the [`Recorder`] trait. Instrumented code
//! takes `&mut dyn Recorder`; when observability is off the caller
//! passes a [`NopRecorder`] (or [`ObsRecorder::Off`]) whose `record` is
//! an empty inlineable body, so the off path costs one virtual call
//! with no allocation, no branch on event content, and — critically for
//! a deterministic simulator — no influence on control flow.
//!
//! # Example
//!
//! ```
//! use hopp_obs::{Event, ObsRecorder, Recorder, TraceSink};
//! use hopp_types::{Nanos, Pid, Vpn};
//!
//! let mut rec = ObsRecorder::Sink(TraceSink::new(1024));
//! rec.record(Nanos::from_micros(3), Event::MinorFault {
//!     pid: Pid::new(1),
//!     vpn: Vpn::new(42),
//! });
//! let events = rec.into_events();
//! assert_eq!(events.len(), 1);
//! let jsonl = hopp_obs::export::events_to_jsonl(&events);
//! assert!(jsonl.contains("\"event\":\"minor_fault\""));
//! ```

pub mod event;
pub mod export;
pub mod hist;
pub mod recorder;

pub use event::{Component, Event, TierKind, TimedEvent};
pub use export::{events_to_chrome_trace, events_to_chrome_trace_with_extra, events_to_jsonl};
pub use hist::{
    Histogram, HistogramSummary, LatencyHistograms, LatencySummaries, NodeHistograms,
    NodeLatencySummary,
};
pub use recorder::{NopRecorder, ObsLevel, ObsRecorder, Recorder, TraceSink};

use hopp_types::Nanos;

/// Records `event` at `at` — tiny forwarding helper so instrumented
/// code reads `obs::emit(rec, at, ...)` instead of `rec.record(...)`
/// where the borrow checker needs a reborrow.
#[inline]
pub fn emit(rec: &mut dyn Recorder, at: Nanos, event: Event) {
    rec.record(at, event);
}
