//! Event recorders: the `dyn`-dispatch seam between instrumented code
//! and whatever (if anything) is collecting events.

use std::collections::VecDeque;

use hopp_types::Nanos;

use crate::event::{Event, TimedEvent};

/// How much observability a run collects.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ObsLevel {
    /// Nothing: no events, no histograms. The provably-free path.
    Off,
    /// Latency histograms only (the default): percentile summaries in
    /// the report, no per-event stream.
    #[default]
    Counters,
    /// Histograms plus the full typed event stream.
    Full,
}

impl ObsLevel {
    /// Parses the `--obs-level` flag values.
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s {
            "off" => Some(ObsLevel::Off),
            "counters" => Some(ObsLevel::Counters),
            "full" => Some(ObsLevel::Full),
            _ => None,
        }
    }

    /// Stable label (inverse of [`ObsLevel::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Counters => "counters",
            ObsLevel::Full => "full",
        }
    }

    /// Whether histograms are recorded at this level.
    pub fn histograms(self) -> bool {
        !matches!(self, ObsLevel::Off)
    }

    /// Whether the event stream is recorded at this level.
    pub fn events(self) -> bool {
        matches!(self, ObsLevel::Full)
    }
}

/// The recording seam. Instrumented components take `&mut dyn Recorder`
/// and call [`Recorder::record`] unconditionally; the recorder decides
/// whether anything is kept. Events must never influence the caller's
/// control flow — that keeps the simulation bit-identical across
/// observability levels.
pub trait Recorder {
    /// Records `event` as having happened at simulated time `at`.
    fn record(&mut self, at: Nanos, event: Event);

    /// True if recorded events are actually kept. Components may use
    /// this to skip *constructing* expensive events, never to change
    /// simulation behaviour.
    fn is_enabled(&self) -> bool {
        false
    }
}

/// The recorder that keeps nothing. This is what the off path
/// dispatches to: an empty inlineable `record` body.
#[derive(Clone, Copy, Debug, Default)]
pub struct NopRecorder;

impl Recorder for NopRecorder {
    #[inline]
    fn record(&mut self, _at: Nanos, _event: Event) {}
}

/// A bounded in-memory event buffer. When full, the *oldest* events are
/// dropped (the end of a run is usually the interesting part) and the
/// drop is counted, so exports can say exactly what is missing.
#[derive(Clone, Debug)]
pub struct TraceSink {
    events: VecDeque<TimedEvent>,
    capacity: usize,
    dropped: u64,
}

/// Default event capacity (~24 MB of `TimedEvent` at 48 B each).
pub const DEFAULT_SINK_CAPACITY: usize = 1 << 19;

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new(DEFAULT_SINK_CAPACITY)
    }
}

impl TraceSink {
    /// Creates a sink holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace sink needs room for at least 1 event");
        TraceSink {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Number of events held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the sink into a `Vec`, oldest first.
    pub fn into_events(self) -> Vec<TimedEvent> {
        self.events.into()
    }
}

impl Recorder for TraceSink {
    fn record(&mut self, at: Nanos, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TimedEvent { at, event });
    }

    fn is_enabled(&self) -> bool {
        true
    }
}

/// The simulator's concrete recorder: either off (free) or a sink.
///
/// Stored by value so the hot path is an enum match rather than a heap
/// indirection; instrumented callees still only see `&mut dyn Recorder`.
#[derive(Clone, Debug, Default)]
pub enum ObsRecorder {
    /// Record nothing.
    #[default]
    Off,
    /// Record into a ring buffer.
    Sink(TraceSink),
}

impl ObsRecorder {
    /// Builds the recorder for an observability level.
    pub fn for_level(level: ObsLevel) -> Self {
        if level.events() {
            ObsRecorder::Sink(TraceSink::default())
        } else {
            ObsRecorder::Off
        }
    }

    /// Consumes the recorder, returning its events (empty when off).
    pub fn into_events(self) -> Vec<TimedEvent> {
        match self {
            ObsRecorder::Off => Vec::new(),
            ObsRecorder::Sink(s) => s.into_events(),
        }
    }

    /// Events held right now, cloned (empty when off).
    pub fn snapshot(&self) -> Vec<TimedEvent> {
        match self {
            ObsRecorder::Off => Vec::new(),
            ObsRecorder::Sink(s) => s.events().copied().collect(),
        }
    }

    /// Events dropped by the ring buffer.
    pub fn dropped(&self) -> u64 {
        match self {
            ObsRecorder::Off => 0,
            ObsRecorder::Sink(s) => s.dropped(),
        }
    }
}

impl Recorder for ObsRecorder {
    #[inline]
    fn record(&mut self, at: Nanos, event: Event) {
        if let ObsRecorder::Sink(s) = self {
            s.record(at, event);
        }
    }

    fn is_enabled(&self) -> bool {
        matches!(self, ObsRecorder::Sink(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopp_types::{Pid, Vpn};

    fn ev(v: u64) -> Event {
        Event::MinorFault {
            pid: Pid::new(1),
            vpn: Vpn::new(v),
        }
    }

    #[test]
    fn nop_recorder_is_disabled_and_keeps_nothing() {
        let mut r = NopRecorder;
        assert!(!r.is_enabled());
        r.record(Nanos::ZERO, ev(1)); // must not panic, must not keep
    }

    #[test]
    fn sink_keeps_events_in_order() {
        let mut s = TraceSink::new(16);
        for v in 0..5u64 {
            s.record(Nanos::from_nanos(v), ev(v));
        }
        let got = s.into_events();
        assert_eq!(got.len(), 5);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.at, Nanos::from_nanos(i as u64));
        }
    }

    #[test]
    fn sink_drops_oldest_when_full() {
        let mut s = TraceSink::new(3);
        for v in 0..5u64 {
            s.record(Nanos::from_nanos(v), ev(v));
        }
        assert_eq!(s.dropped(), 2);
        let got = s.into_events();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].at, Nanos::from_nanos(2), "oldest were dropped");
    }

    #[test]
    fn obs_recorder_off_is_free_and_empty() {
        let mut r = ObsRecorder::Off;
        r.record(Nanos::ZERO, ev(1));
        assert!(!r.is_enabled());
        assert!(r.into_events().is_empty());
    }

    #[test]
    fn levels_parse_and_roundtrip() {
        for l in [ObsLevel::Off, ObsLevel::Counters, ObsLevel::Full] {
            assert_eq!(ObsLevel::parse(l.label()), Some(l));
        }
        assert_eq!(ObsLevel::parse("bogus"), None);
        assert!(!ObsLevel::Off.histograms());
        assert!(ObsLevel::Counters.histograms());
        assert!(!ObsLevel::Counters.events());
        assert!(ObsLevel::Full.events());
    }
}
