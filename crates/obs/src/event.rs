//! The typed event vocabulary of the simulated stack.
//!
//! One [`Event`] is one thing that happened at one simulated instant,
//! attributed to the [`Component`] that did it. Variants are `Copy` and
//! allocation-free so recording them costs a ring-buffer slot and
//! nothing else; all string rendering happens at export time.

use std::fmt::Write as _;

use hopp_types::{Nanos, NodeId, Pid, Ppn, SwapSlot, Vpn};

/// The pipeline component an event is attributed to. One Chrome-trace
/// track ("thread") per component.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Component {
    /// Hot page detector (per-channel, in the memory controller).
    Hpd,
    /// Reverse page table and its in-MC cache.
    Rpt,
    /// Stream training table.
    Stt,
    /// Tier selection (SSP/LSP/RSP or the Markov trainer).
    Tiers,
    /// Prefetch life cycle: issue, arrival, hit, waste.
    Prefetch,
    /// Kernel fault path, reclaim and swap.
    Kernel,
    /// RDMA link to the remote memory node.
    Rdma,
    /// Disaggregated memory pool: placement, retry, failover.
    Fabric,
    /// The hopp-lab sweep engine (bench layer): per-cell progress and
    /// wall-clock timing. The one track whose timestamps are wall
    /// clock, not simulated time — lab events never enter the
    /// deterministic sweep artifact.
    Lab,
}

impl Component {
    /// All components, in track order.
    pub const ALL: [Component; 9] = [
        Component::Hpd,
        Component::Rpt,
        Component::Stt,
        Component::Tiers,
        Component::Prefetch,
        Component::Kernel,
        Component::Rdma,
        Component::Fabric,
        Component::Lab,
    ];

    /// Stable lowercase label, used as the track name.
    pub fn label(self) -> &'static str {
        match self {
            Component::Hpd => "hpd",
            Component::Rpt => "rpt",
            Component::Stt => "stt",
            Component::Tiers => "tiers",
            Component::Prefetch => "prefetch",
            Component::Kernel => "kernel",
            Component::Rdma => "rdma",
            Component::Fabric => "fabric",
            Component::Lab => "lab",
        }
    }

    /// Stable per-component Chrome-trace thread id (1-based).
    pub fn tid(self) -> u32 {
        match self {
            Component::Hpd => 1,
            Component::Rpt => 2,
            Component::Stt => 3,
            Component::Tiers => 4,
            Component::Prefetch => 5,
            Component::Kernel => 6,
            Component::Rdma => 7,
            Component::Fabric => 8,
            Component::Lab => 9,
        }
    }
}

/// Which predictor produced a prefetch decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TierKind {
    /// Simple stream prefetching (tier 1).
    Ssp,
    /// Ladder stream prefetching (tier 2).
    Lsp,
    /// Ripple stream prefetching (tier 3).
    Rsp,
    /// The Markov (address-correlation) trainer, when configured.
    Markov,
}

impl TierKind {
    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            TierKind::Ssp => "SSP",
            TierKind::Lsp => "LSP",
            TierKind::Rsp => "RSP",
            TierKind::Markov => "Markov",
        }
    }
}

/// One thing that happened in the simulated stack.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Event {
    /// The HPD crossed threshold `N` for a page and emitted it.
    HpdHot {
        /// The hot physical page.
        ppn: Ppn,
    },
    /// RPT lookup served from the in-MC cache.
    RptHit {
        /// Looked-up physical page.
        ppn: Ppn,
    },
    /// RPT cache miss; the full table was walked in DRAM.
    RptMiss {
        /// Looked-up physical page.
        ppn: Ppn,
        /// Whether the walk found a mapping (false: unresolved, the
        /// hot page is dropped).
        resolved: bool,
    },
    /// A dirty RPT cache way was written back to DRAM on refill.
    RptWriteback {
        /// The page whose lookup forced the writeback.
        ppn: Ppn,
    },
    /// The STT allocated a new stream entry.
    StreamCreated {
        /// STT slot index.
        slot: u16,
        /// Slot reuse generation.
        generation: u32,
        /// Owning process.
        pid: Pid,
        /// First page of the stream.
        vpn: Vpn,
    },
    /// An existing stream absorbed a hot page.
    StreamUpdated {
        /// STT slot index.
        slot: u16,
        /// Slot reuse generation.
        generation: u32,
        /// Owning process.
        pid: Pid,
        /// The absorbed page.
        vpn: Vpn,
    },
    /// A trained stream was recycled to make room (LRU victim).
    StreamEvicted {
        /// STT slot index.
        slot: u16,
        /// Generation that was evicted.
        generation: u32,
    },
    /// A tier classified a stream window and predicted.
    TierDecision {
        /// The predicting tier.
        tier: TierKind,
        /// Owning process.
        pid: Pid,
        /// The window's anchor page (VPN_A).
        vpn: Vpn,
    },
    /// The execution engine issued an asynchronous RDMA page read.
    PrefetchIssued {
        /// Owning process.
        pid: Pid,
        /// First fetched page.
        vpn: Vpn,
        /// Consecutive pages covered by the read.
        span: u32,
        /// Expected issue→completion latency.
        latency: Nanos,
    },
    /// A prefetched span arrived and its PTEs were injected.
    PrefetchArrived {
        /// Owning process.
        pid: Pid,
        /// First fetched page.
        vpn: Vpn,
        /// Pages injected.
        span: u32,
    },
    /// A prefetched page was touched for the first time (a saved fault).
    PrefetchHit {
        /// Owning process.
        pid: Pid,
        /// The page.
        vpn: Vpn,
        /// Arrival→first-touch interval (the paper's timeliness).
        timeliness: Nanos,
    },
    /// A prefetched page was reclaimed before ever being touched.
    PrefetchWasted {
        /// Owning process.
        pid: Pid,
        /// The page.
        vpn: Vpn,
    },
    /// A kernel baseline prefetcher (Fastswap/Leap/VMA/Depth-N)
    /// requested a page on the fault path.
    BaselinePrefetch {
        /// Owning process.
        pid: Pid,
        /// Requested page.
        vpn: Vpn,
        /// Whether the baseline injects the PTE on arrival (Leap) or
        /// parks the page in the swapcache (Fastswap).
        inject: bool,
    },
    /// A demand access missed everything and read the page from remote
    /// memory synchronously.
    MajorFault {
        /// Faulting process.
        pid: Pid,
        /// Faulted page.
        vpn: Vpn,
        /// Full fault latency (RDMA read + kernel CPU cost).
        latency: Nanos,
    },
    /// A fault was served from the swapcache (no remote read).
    MinorFault {
        /// Faulting process.
        pid: Pid,
        /// Faulted page.
        vpn: Vpn,
    },
    /// First touch of a never-swapped page (allocation, not a fault).
    FirstTouch {
        /// Owning process.
        pid: Pid,
        /// The new page.
        vpn: Vpn,
    },
    /// A demand access had to wait for an in-flight prefetch of the
    /// same page to land.
    InflightWait {
        /// Waiting process.
        pid: Pid,
        /// The page in flight.
        vpn: Vpn,
        /// How long the access stalled.
        wait: Nanos,
    },
    /// Reclaim evicted a resident frame.
    Reclaim {
        /// Evicted frame.
        ppn: Ppn,
        /// Whether it came off the active list (LRU pressure) rather
        /// than the inactive list.
        active: bool,
        /// Whether it was dirty (forced a remote writeback).
        dirty: bool,
    },
    /// A reclaimed page was assigned a swap slot on the remote node.
    SwapOut {
        /// Owning process.
        pid: Pid,
        /// Swapped-out page.
        vpn: Vpn,
        /// Its remote slot.
        slot: SwapSlot,
    },
    /// An RDMA read was issued on the wire.
    RdmaRead {
        /// Transfer size.
        bytes: u64,
        /// Issue→completion latency including queueing.
        latency: Nanos,
    },
    /// An RDMA write (dirty-page writeback) was issued on the wire.
    RdmaWrite {
        /// Transfer size.
        bytes: u64,
        /// Issue→completion latency including queueing.
        latency: Nanos,
    },
    /// The placement layer assigned a swapped-out page to a pool node.
    PagePlaced {
        /// Owning process.
        pid: Pid,
        /// Placed page.
        vpn: Vpn,
        /// Primary node it lives on.
        node: NodeId,
    },
    /// A remote op on a node failed transiently and was retried after a
    /// backoff delay.
    RemoteRetry {
        /// The node that failed the attempt.
        node: NodeId,
        /// 1-based retry attempt number.
        attempt: u32,
        /// Timeout + backoff paid before the retry.
        backoff: Nanos,
    },
    /// A remote op on a node timed out (unresponsive node).
    RemoteTimeout {
        /// The unresponsive node.
        node: NodeId,
        /// How long the requester waited before giving up.
        waited: Nanos,
    },
    /// A node was observed dead for the first time.
    NodeDown {
        /// The lost node.
        node: NodeId,
    },
    /// A read failed over from a dead/exhausted primary to a replica.
    Failover {
        /// Owning process.
        pid: Pid,
        /// The page being read.
        vpn: Vpn,
        /// The replica that served the read.
        node: NodeId,
    },
    /// A sweep cell was claimed by a lab worker (wall-clock instant).
    LabCellStart {
        /// Grid index of the cell (0-based, grid order).
        index: u32,
        /// Total cells in the grid.
        total: u32,
    },
    /// A sweep cell finished (interval ending at its timestamp).
    LabCellDone {
        /// Grid index of the cell (0-based, grid order).
        index: u32,
        /// Whether the cell was served from the on-disk cache.
        cached: bool,
        /// Wall-clock time the cell took.
        wall: Nanos,
    },
}

impl Event {
    /// The component this event is attributed to.
    pub fn component(&self) -> Component {
        match self {
            Event::HpdHot { .. } => Component::Hpd,
            Event::RptHit { .. } | Event::RptMiss { .. } | Event::RptWriteback { .. } => {
                Component::Rpt
            }
            Event::StreamCreated { .. }
            | Event::StreamUpdated { .. }
            | Event::StreamEvicted { .. } => Component::Stt,
            Event::TierDecision { .. } => Component::Tiers,
            Event::PrefetchIssued { .. }
            | Event::PrefetchArrived { .. }
            | Event::PrefetchHit { .. }
            | Event::PrefetchWasted { .. }
            | Event::BaselinePrefetch { .. } => Component::Prefetch,
            Event::MajorFault { .. }
            | Event::MinorFault { .. }
            | Event::FirstTouch { .. }
            | Event::InflightWait { .. }
            | Event::Reclaim { .. }
            | Event::SwapOut { .. } => Component::Kernel,
            Event::RdmaRead { .. } | Event::RdmaWrite { .. } => Component::Rdma,
            Event::PagePlaced { .. }
            | Event::RemoteRetry { .. }
            | Event::RemoteTimeout { .. }
            | Event::NodeDown { .. }
            | Event::Failover { .. } => Component::Fabric,
            Event::LabCellStart { .. } | Event::LabCellDone { .. } => Component::Lab,
        }
    }

    /// Stable snake_case event name.
    pub fn name(&self) -> &'static str {
        match self {
            Event::HpdHot { .. } => "hpd_hot",
            Event::RptHit { .. } => "rpt_hit",
            Event::RptMiss { .. } => "rpt_miss",
            Event::RptWriteback { .. } => "rpt_writeback",
            Event::StreamCreated { .. } => "stream_created",
            Event::StreamUpdated { .. } => "stream_updated",
            Event::StreamEvicted { .. } => "stream_evicted",
            Event::TierDecision { .. } => "tier_decision",
            Event::PrefetchIssued { .. } => "prefetch_issued",
            Event::PrefetchArrived { .. } => "prefetch_arrived",
            Event::PrefetchHit { .. } => "prefetch_hit",
            Event::PrefetchWasted { .. } => "prefetch_wasted",
            Event::BaselinePrefetch { .. } => "baseline_prefetch",
            Event::MajorFault { .. } => "major_fault",
            Event::MinorFault { .. } => "minor_fault",
            Event::FirstTouch { .. } => "first_touch",
            Event::InflightWait { .. } => "inflight_wait",
            Event::Reclaim { .. } => "reclaim",
            Event::SwapOut { .. } => "swap_out",
            Event::RdmaRead { .. } => "rdma_read",
            Event::RdmaWrite { .. } => "rdma_write",
            Event::PagePlaced { .. } => "page_placed",
            Event::RemoteRetry { .. } => "remote_retry",
            Event::RemoteTimeout { .. } => "remote_timeout",
            Event::NodeDown { .. } => "node_down",
            Event::Failover { .. } => "failover",
            Event::LabCellStart { .. } => "lab_cell_start",
            Event::LabCellDone { .. } => "lab_cell_done",
        }
    }

    /// The duration this event spans, for events that describe an
    /// interval ending (or starting) at their timestamp. These become
    /// "complete" (`"ph":"X"`) Chrome-trace slices; the rest are
    /// instants.
    pub fn duration(&self) -> Option<Nanos> {
        match self {
            Event::PrefetchIssued { latency, .. }
            | Event::MajorFault { latency, .. }
            | Event::RdmaRead { latency, .. }
            | Event::RdmaWrite { latency, .. } => Some(*latency),
            Event::PrefetchHit { timeliness, .. } => Some(*timeliness),
            Event::InflightWait { wait, .. } => Some(*wait),
            Event::RemoteRetry { backoff, .. } => Some(*backoff),
            Event::RemoteTimeout { waited, .. } => Some(*waited),
            Event::LabCellDone { wall, .. } => Some(*wall),
            _ => None,
        }
    }

    /// Appends this event's fields as JSON object members, each
    /// prefixed with `,` (the caller has already opened the object).
    pub fn write_args_json(&self, out: &mut String) {
        // All keys are static identifiers and all values numeric or
        // boolean, so no string escaping is needed here.
        match *self {
            Event::HpdHot { ppn } | Event::RptHit { ppn } | Event::RptWriteback { ppn } => {
                let _ = write!(out, ",\"ppn\":{}", ppn.raw());
            }
            Event::RptMiss { ppn, resolved } => {
                let _ = write!(out, ",\"ppn\":{},\"resolved\":{resolved}", ppn.raw());
            }
            Event::StreamCreated {
                slot,
                generation,
                pid,
                vpn,
            }
            | Event::StreamUpdated {
                slot,
                generation,
                pid,
                vpn,
            } => {
                let _ = write!(
                    out,
                    ",\"slot\":{slot},\"generation\":{generation},\"pid\":{},\"vpn\":{}",
                    pid.raw(),
                    vpn.raw()
                );
            }
            Event::StreamEvicted { slot, generation } => {
                let _ = write!(out, ",\"slot\":{slot},\"generation\":{generation}");
            }
            Event::TierDecision { tier, pid, vpn } => {
                let _ = write!(
                    out,
                    ",\"tier\":\"{}\",\"pid\":{},\"vpn\":{}",
                    tier.label(),
                    pid.raw(),
                    vpn.raw()
                );
            }
            Event::PrefetchIssued {
                pid,
                vpn,
                span,
                latency,
            } => {
                let _ = write!(
                    out,
                    ",\"pid\":{},\"vpn\":{},\"span\":{span},\"latency_ns\":{}",
                    pid.raw(),
                    vpn.raw(),
                    latency.as_nanos()
                );
            }
            Event::PrefetchArrived { pid, vpn, span } => {
                let _ = write!(
                    out,
                    ",\"pid\":{},\"vpn\":{},\"span\":{span}",
                    pid.raw(),
                    vpn.raw()
                );
            }
            Event::PrefetchHit {
                pid,
                vpn,
                timeliness,
            } => {
                let _ = write!(
                    out,
                    ",\"pid\":{},\"vpn\":{},\"timeliness_ns\":{}",
                    pid.raw(),
                    vpn.raw(),
                    timeliness.as_nanos()
                );
            }
            Event::PrefetchWasted { pid, vpn }
            | Event::MinorFault { pid, vpn }
            | Event::FirstTouch { pid, vpn } => {
                let _ = write!(out, ",\"pid\":{},\"vpn\":{}", pid.raw(), vpn.raw());
            }
            Event::BaselinePrefetch { pid, vpn, inject } => {
                let _ = write!(
                    out,
                    ",\"pid\":{},\"vpn\":{},\"inject\":{inject}",
                    pid.raw(),
                    vpn.raw()
                );
            }
            Event::MajorFault { pid, vpn, latency } => {
                let _ = write!(
                    out,
                    ",\"pid\":{},\"vpn\":{},\"latency_ns\":{}",
                    pid.raw(),
                    vpn.raw(),
                    latency.as_nanos()
                );
            }
            Event::InflightWait { pid, vpn, wait } => {
                let _ = write!(
                    out,
                    ",\"pid\":{},\"vpn\":{},\"wait_ns\":{}",
                    pid.raw(),
                    vpn.raw(),
                    wait.as_nanos()
                );
            }
            Event::Reclaim { ppn, active, dirty } => {
                let _ = write!(
                    out,
                    ",\"ppn\":{},\"active\":{active},\"dirty\":{dirty}",
                    ppn.raw()
                );
            }
            Event::SwapOut { pid, vpn, slot } => {
                let _ = write!(
                    out,
                    ",\"pid\":{},\"vpn\":{},\"slot\":{}",
                    pid.raw(),
                    vpn.raw(),
                    slot.raw()
                );
            }
            Event::RdmaRead { bytes, latency } | Event::RdmaWrite { bytes, latency } => {
                let _ = write!(
                    out,
                    ",\"bytes\":{bytes},\"latency_ns\":{}",
                    latency.as_nanos()
                );
            }
            Event::PagePlaced { pid, vpn, node } => {
                let _ = write!(
                    out,
                    ",\"pid\":{},\"vpn\":{},\"node\":{}",
                    pid.raw(),
                    vpn.raw(),
                    node.raw()
                );
            }
            Event::RemoteRetry {
                node,
                attempt,
                backoff,
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"attempt\":{attempt},\"backoff_ns\":{}",
                    node.raw(),
                    backoff.as_nanos()
                );
            }
            Event::RemoteTimeout { node, waited } => {
                let _ = write!(
                    out,
                    ",\"node\":{},\"waited_ns\":{}",
                    node.raw(),
                    waited.as_nanos()
                );
            }
            Event::NodeDown { node } => {
                let _ = write!(out, ",\"node\":{}", node.raw());
            }
            Event::Failover { pid, vpn, node } => {
                let _ = write!(
                    out,
                    ",\"pid\":{},\"vpn\":{},\"node\":{}",
                    pid.raw(),
                    vpn.raw(),
                    node.raw()
                );
            }
            Event::LabCellStart { index, total } => {
                let _ = write!(out, ",\"index\":{index},\"total\":{total}");
            }
            Event::LabCellDone {
                index,
                cached,
                wall,
            } => {
                let _ = write!(
                    out,
                    ",\"index\":{index},\"cached\":{cached},\"wall_ns\":{}",
                    wall.as_nanos()
                );
            }
        }
    }
}

/// An [`Event`] plus the simulated instant it happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimedEvent {
    /// Simulated timestamp. For interval events this is the *end* of
    /// the interval (the moment the outcome was known).
    pub at: Nanos,
    /// What happened.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_component_has_a_distinct_tid_and_label() {
        let mut tids: Vec<u32> = Component::ALL.iter().map(|c| c.tid()).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), Component::ALL.len());
        let mut labels: Vec<&str> = Component::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Component::ALL.len());
    }

    #[test]
    fn args_render_as_json_members() {
        let mut out = String::new();
        Event::MajorFault {
            pid: Pid::new(3),
            vpn: Vpn::new(77),
            latency: Nanos::from_nanos(1500),
        }
        .write_args_json(&mut out);
        assert_eq!(out, ",\"pid\":3,\"vpn\":77,\"latency_ns\":1500");
    }

    #[test]
    fn interval_events_carry_durations() {
        let e = Event::RdmaRead {
            bytes: 4096,
            latency: Nanos::from_nanos(3400),
        };
        assert_eq!(e.duration(), Some(Nanos::from_nanos(3400)));
        assert_eq!(e.component(), Component::Rdma);
        let i = Event::MinorFault {
            pid: Pid::new(1),
            vpn: Vpn::new(1),
        };
        assert_eq!(i.duration(), None);
    }
}
