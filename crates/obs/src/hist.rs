//! Log₂-bucketed latency histograms.
//!
//! Latency-shaped quantities in the simulator span five orders of
//! magnitude (a DRAM hit is ~100 ns, a queued RDMA read under load can
//! take milliseconds), so the histograms use one bucket per power of
//! two: bucket 0 holds the value 0, bucket `k ≥ 1` holds values in
//! `[2^(k-1), 2^k)`. 64 buckets cover the full `u64` range in 520
//! bytes of counters, recording is a handful of instructions, and the
//! p50/p90/p99 read-outs are exact to within one octave — all any
//! prefetch-timeliness argument ever needs.

use hopp_types::Nanos;

/// Number of buckets: value 0 plus one per power of two.
pub const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: 0 for 0, else its bit length (capped).
    fn bucket_of(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Records a [`Nanos`] sample.
    pub fn record_nanos(&mut self, t: Nanos) {
        self.record(t.as_nanos());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (0.0 when empty) — exact, not bucketed.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// containing it, clamped to the exact max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if idx == 0 { 0 } else { (1u64 << idx) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// The compact `Copy` summary used in reports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

/// Percentile read-out of a [`Histogram`], cheap to embed in reports.
///
/// `p50`/`p90`/`p99` are bucket upper bounds (exact to within one
/// octave); `mean` and `max` are exact.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact arithmetic mean.
    pub mean: f64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

impl HistogramSummary {
    /// Appends this summary as a JSON object to `out`.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"count\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        );
    }
}

/// The simulator's standing set of latency histograms.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct LatencyHistograms {
    /// Full major-fault latency (synchronous remote read + CPU cost).
    pub major_fault: Histogram,
    /// Prefetch timeliness: arrival→first-touch (both HoPP and
    /// baseline prefetches).
    pub timeliness: Histogram,
    /// Demand-access stalls on in-flight prefetches.
    pub inflight_wait: Histogram,
    /// RDMA read latency (issue→completion, queueing included).
    pub rdma_read: Histogram,
    /// RDMA write latency.
    pub rdma_write: Histogram,
}

impl LatencyHistograms {
    /// Empty histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copyable summaries of all five histograms.
    pub fn summaries(&self) -> LatencySummaries {
        LatencySummaries {
            major_fault: self.major_fault.summary(),
            timeliness: self.timeliness.summary(),
            inflight_wait: self.inflight_wait.summary(),
            rdma_read: self.rdma_read.summary(),
            rdma_write: self.rdma_write.summary(),
        }
    }
}

/// `Copy` summaries of [`LatencyHistograms`], embedded in `SimReport`.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LatencySummaries {
    /// Major-fault latency.
    pub major_fault: HistogramSummary,
    /// Prefetch timeliness.
    pub timeliness: HistogramSummary,
    /// Inflight-wait stalls.
    pub inflight_wait: HistogramSummary,
    /// RDMA read latency.
    pub rdma_read: HistogramSummary,
    /// RDMA write latency.
    pub rdma_write: HistogramSummary,
}

/// Per-node read/write latency histograms for one memory-pool node.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct NodeHistograms {
    /// Read latency on this node's link (issue→completion, queueing,
    /// retries and failover delays included).
    pub read: Histogram,
    /// Write (replication/writeback) latency on this node's link.
    pub write: Histogram,
}

impl NodeHistograms {
    /// Empty histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copyable summary of both histograms.
    pub fn summary(&self) -> NodeLatencySummary {
        NodeLatencySummary {
            read: self.read.summary(),
            write: self.write.summary(),
        }
    }
}

/// `Copy` summary of one node's [`NodeHistograms`].
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct NodeLatencySummary {
    /// Read latency.
    pub read: HistogramSummary,
    /// Write latency.
    pub write: HistogramSummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!((s.p50, s.p90, s.p99, s.max), (0, 0, 0, 0));
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_octave_exact() {
        let mut h = Histogram::new();
        // 90 fast samples (~100 ns), 10 slow (~1 ms).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        // 100 lives in [64,128): upper bound 127.
        assert_eq!(s.p50, 127);
        assert_eq!(s.p90, 127);
        // 1_000_000 lives in [2^19, 2^20): upper bound clamped to max.
        assert_eq!(s.p99, 1_000_000);
        assert_eq!(s.max, 1_000_000);
        let expected_mean = (90.0 * 100.0 + 10.0 * 1_000_000.0) / 100.0;
        assert!((s.mean - expected_mean).abs() < 1e-9);
    }

    #[test]
    fn max_is_exact_and_clamps_quantiles() {
        let mut h = Histogram::new();
        h.record(5);
        let s = h.summary();
        // Bucket upper bound would be 7; the exact max clamps it.
        assert_eq!(s.p50, 5);
        assert_eq!(s.p99, 5);
        assert_eq!(s.max, 5);
    }

    #[test]
    fn merge_combines_counts_and_max() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [100u64, 200] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), 200);
        assert_eq!(a.quantile(1.0), 200);
    }

    #[test]
    fn summary_json_is_well_formed() {
        let mut h = Histogram::new();
        h.record(1000);
        let mut out = String::new();
        h.summary().write_json(&mut out);
        assert!(out.starts_with('{') && out.ends_with('}'));
        assert!(out.contains("\"count\":1"));
        assert!(out.contains("\"p99_ns\":1000"));
    }
}
