//! Memory-access record types shared across the stack.

use core::fmt;

use crate::{LineAddr, Nanos, Pid, Vpn};

/// Whether an access reads or writes memory.
///
/// The HPD module only accounts for READs (§III-B of the paper): a write
/// miss first appears as a read on the memory bus, and RDMA DMA-writes of
/// fetched pages would otherwise pollute the trace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load (or the fill part of a store miss).
    Read,
    /// A store writeback.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Read`].
    pub const fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }
}

/// A virtual page touch issued by an application thread.
///
/// This is the unit the workload generators emit: "process `pid` touches
/// `lines` cachelines of virtual page `vpn`, spending `think_ns` of
/// compute before the touch".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PageAccess {
    /// The accessing process.
    pub pid: Pid,
    /// The virtual page touched.
    pub vpn: Vpn,
    /// Read or write.
    pub kind: AccessKind,
    /// How many distinct cachelines of the page this touch covers (1..=64).
    pub lines: u8,
    /// Compute time spent before this touch (models the application's
    /// arithmetic between memory operations).
    pub think_ns: u32,
}

impl PageAccess {
    /// A full-page sequential read touch with no think time.
    pub fn read(pid: Pid, vpn: Vpn) -> Self {
        PageAccess {
            pid,
            vpn,
            kind: AccessKind::Read,
            lines: crate::LINES_PER_PAGE as u8,
            think_ns: 0,
        }
    }

    /// A full-page sequential write touch with no think time.
    pub fn write(pid: Pid, vpn: Vpn) -> Self {
        PageAccess {
            kind: AccessKind::Write,
            ..PageAccess::read(pid, vpn)
        }
    }

    /// Returns this touch with the given number of lines covered.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is 0 or greater than 64.
    pub fn with_lines(mut self, lines: u8) -> Self {
        assert!(lines >= 1 && lines as usize <= crate::LINES_PER_PAGE);
        self.lines = lines;
        self
    }

    /// Returns this touch with the given think time.
    pub fn with_think(mut self, think_ns: u32) -> Self {
        self.think_ns = think_ns;
        self
    }
}

/// A physical cacheline access as observed on the memory bus (an LLC
/// miss). This is the HMTT trace record format of the paper reduced to
/// the fields the simulation needs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LineAccess {
    /// Physical cacheline address.
    pub addr: LineAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Bus-observation time.
    pub at: Nanos,
}

/// Flags carried alongside a hot page, forwarded verbatim from the RPT
/// entry to software (§III-C: the hardware does not consume them).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub struct PageFlags {
    /// The page is mapped by more than one process.
    pub shared: bool,
    /// The page belongs to a huge-page mapping (2 MB or 1 GB).
    pub huge: bool,
}

/// A hot page event: the output of the hardware pipeline (HPD → RPT) and
/// the input to HoPP's prefetch training framework.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HotPage {
    /// Owning process, resolved by the reverse page table.
    pub pid: Pid,
    /// Virtual page number, resolved by the reverse page table.
    pub vpn: Vpn,
    /// Shared/huge flags from the RPT entry.
    pub flags: PageFlags,
    /// When the page crossed the hotness threshold.
    pub at: Nanos,
}

impl fmt::Display for HotPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hot[{} {} @{}]", self.pid, self.vpn, self.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_access_builders() {
        let a = PageAccess::read(Pid::new(1), Vpn::new(7))
            .with_lines(3)
            .with_think(50);
        assert_eq!(a.lines, 3);
        assert_eq!(a.think_ns, 50);
        assert!(a.kind.is_read());
        let w = PageAccess::write(Pid::new(1), Vpn::new(7));
        assert!(!w.kind.is_read());
        assert_eq!(w.lines as usize, crate::LINES_PER_PAGE);
    }

    #[test]
    #[should_panic]
    fn with_lines_rejects_zero() {
        let _ = PageAccess::read(Pid::new(1), Vpn::new(7)).with_lines(0);
    }

    #[test]
    fn hot_page_display() {
        let h = HotPage {
            pid: Pid::new(3),
            vpn: Vpn::new(0x10),
            flags: PageFlags::default(),
            at: Nanos::from_nanos(12),
        };
        assert_eq!(format!("{h}"), "hot[pid3 v0x10 @12ns]");
    }
}
