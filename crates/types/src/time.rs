//! Simulated time.
//!
//! The whole stack uses a single monotonically non-decreasing clock
//! measured in nanoseconds. [`Nanos`] is an absolute timestamp *and* a
//! duration (the distinction is not worth two types here: all arithmetic
//! is saturating and non-negative).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub};

/// A simulated time point or duration in nanoseconds.
///
/// # Example
///
/// ```
/// use hopp_types::Nanos;
/// let t = Nanos::from_micros(4) + Nanos::from_nanos(300);
/// assert_eq!(t.as_nanos(), 4_300);
/// assert_eq!(t.as_micros_f64(), 4.3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// Time zero.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable time (used as "never").
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time in microseconds, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time in milliseconds, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This time in seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating difference `self - earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: Nanos) -> Nanos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    pub fn min(self, other: Nanos) -> Nanos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Scales a duration by a float factor, rounding to the nearest
    /// nanosecond and saturating at the representable range.
    pub fn scale(self, factor: f64) -> Nanos {
        debug_assert!(factor >= 0.0);
        let scaled = (self.0 as f64 * factor).round();
        if scaled >= u64::MAX as f64 {
            Nanos::MAX
        } else {
            Nanos(scaled as u64)
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    /// Saturating subtraction: durations never go negative.
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Nanos::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Nanos::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Nanos::MAX + Nanos::from_nanos(1), Nanos::MAX);
        assert_eq!(Nanos::ZERO - Nanos::from_nanos(1), Nanos::ZERO);
        assert_eq!(
            Nanos::from_nanos(5).saturating_since(Nanos::from_nanos(9)),
            Nanos::ZERO
        );
    }

    #[test]
    fn scaling() {
        assert_eq!(Nanos::from_nanos(100).scale(1.2), Nanos::from_nanos(120));
        assert_eq!(Nanos::from_nanos(100).scale(0.0), Nanos::ZERO);
        assert_eq!(Nanos::MAX.scale(2.0), Nanos::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Nanos::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", Nanos::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", Nanos::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(5)), "5.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Nanos = [1u64, 2, 3].into_iter().map(Nanos::from_nanos).sum();
        assert_eq!(total, Nanos::from_nanos(6));
    }
}
