//! Identifier newtypes: page numbers, process ids, cacheline addresses.

use core::fmt;

use crate::{LINES_PER_PAGE, LINE_SHIFT, PAGE_SHIFT};

/// A virtual page number: a process-local page index.
///
/// Streams, strides and every prefetch decision in HoPP's software are
/// expressed in `Vpn` space, because spatial access patterns exist in
/// virtual addresses (physical frames are allocated arbitrarily).
///
/// # Example
///
/// ```
/// use hopp_types::Vpn;
/// let a = Vpn::new(100);
/// let b = Vpn::new(104);
/// assert_eq!(b.stride_from(a), 4);
/// assert_eq!(a.offset(4), Some(b));
/// assert_eq!(a.offset(-200), None); // would underflow
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(u64);

impl Vpn {
    /// Creates a virtual page number from a raw page index.
    pub const fn new(raw: u64) -> Self {
        Vpn(raw)
    }

    /// The raw page index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The virtual byte address of the first byte of this page.
    pub const fn base_addr(self) -> u64 {
        self.0 << PAGE_SHIFT
    }

    /// The page containing the given virtual byte address.
    pub const fn containing(addr: u64) -> Self {
        Vpn(addr >> PAGE_SHIFT)
    }

    /// Signed page distance `self - other`, the *stride* between two
    /// consecutive accesses of a stream.
    pub const fn stride_from(self, other: Vpn) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// This page shifted by a signed page count, or `None` on overflow.
    pub fn offset(self, delta: i64) -> Option<Vpn> {
        self.0.checked_add_signed(delta).map(Vpn)
    }

    /// This page shifted by a signed page count, clamping at the ends of
    /// the address space instead of failing.
    pub fn offset_saturating(self, delta: i64) -> Vpn {
        Vpn(self.0.saturating_add_signed(delta))
    }

    /// The page index as a `usize`, for indexing page tables.
    ///
    /// This is the sanctioned way to use a `Vpn` as a table index; raw
    /// `as` casts on [`Vpn::raw`] are rejected by the unit-hygiene rule
    /// of `cargo xtask check`.
    #[allow(clippy::cast_possible_truncation)]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The page at position `index` of a page table.
    pub const fn from_index(index: usize) -> Self {
        Vpn(index as u64)
    }
}

impl fmt::Debug for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vpn({:#x})", self.0)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:#x}", self.0)
    }
}

impl From<u64> for Vpn {
    fn from(raw: u64) -> Self {
        Vpn(raw)
    }
}

/// A physical page number: an index into the machine's DRAM frames.
///
/// The memory controller (and therefore the hot page detection table)
/// sees only physical addresses; the reverse page table maps a `Ppn`
/// back to its owning `(Pid, Vpn)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppn(u64);

impl Ppn {
    /// Creates a physical page number from a raw frame index.
    pub const fn new(raw: u64) -> Self {
        Ppn(raw)
    }

    /// The raw frame index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The physical byte address of the first byte of this frame.
    pub const fn base_addr(self) -> u64 {
        self.0 << PAGE_SHIFT
    }

    /// The frame containing the given physical byte address.
    pub const fn containing(addr: u64) -> Self {
        Ppn(addr >> PAGE_SHIFT)
    }

    /// The physical cacheline address of line `line` (0..64) of this frame.
    ///
    /// # Panics
    ///
    /// Panics if `line >= LINES_PER_PAGE` (debug builds only).
    pub fn line(self, line: u8) -> LineAddr {
        debug_assert!((line as usize) < LINES_PER_PAGE);
        LineAddr((self.0 << (PAGE_SHIFT - LINE_SHIFT)) | u64::from(line))
    }

    /// The frame index as a `usize`, for indexing frame tables.
    ///
    /// This is the sanctioned way to use a `Ppn` as a table index; raw
    /// `as` casts on [`Ppn::raw`] are rejected by the unit-hygiene rule
    /// of `cargo xtask check`.
    #[allow(clippy::cast_possible_truncation)]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The frame at position `index` of a frame table.
    pub const fn from_index(index: usize) -> Self {
        Ppn(index as u64)
    }
}

impl fmt::Debug for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ppn({:#x})", self.0)
    }
}

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{:#x}", self.0)
    }
}

impl From<u64> for Ppn {
    fn from(raw: u64) -> Self {
        Ppn(raw)
    }
}

/// A physical cacheline address (byte address divided by the line size).
///
/// This is the granularity at which the LLC and the memory controller
/// operate; the HPD table converts it back to a [`Ppn`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a cacheline address from a raw line index.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// The raw line index (physical byte address >> 6).
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The physical frame containing this line.
    pub const fn ppn(self) -> Ppn {
        Ppn(self.0 >> (PAGE_SHIFT - LINE_SHIFT))
    }

    /// The line index within its page (0..64).
    pub const fn line_in_page(self) -> u8 {
        (self.0 & (LINES_PER_PAGE as u64 - 1)) as u8
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

/// A process identifier.
///
/// The RPT stores 16-bit PIDs (per the paper's 64-bit entry layout), so
/// `Pid` wraps `u16`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pid(u16);

impl Pid {
    /// The kernel's reserved PID (never used by a simulated process).
    pub const KERNEL: Pid = Pid(0);

    /// Creates a process id.
    pub const fn new(raw: u16) -> Self {
        Pid(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The process at position `index` of a process table.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit the RPT's 16-bit PID field — a
    /// workload-construction bug, not a runtime condition.
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u16::MAX as usize, "pid index {index} > u16::MAX");
        Pid(index as u16)
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pid({})", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

impl From<u16> for Pid {
    fn from(raw: u16) -> Self {
        Pid(raw)
    }
}

/// A slot in the (remote) swap device.
///
/// Fastswap's readahead prefetches pages *adjacent in swap-slot order*,
/// which is why the slot a page was evicted into matters to the
/// baselines.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SwapSlot(u64);

impl SwapSlot {
    /// Creates a swap slot index.
    pub const fn new(raw: u64) -> Self {
        SwapSlot(raw)
    }

    /// The raw slot index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The slot shifted by a signed offset, or `None` on overflow.
    pub fn offset(self, delta: i64) -> Option<SwapSlot> {
        self.0.checked_add_signed(delta).map(SwapSlot)
    }
}

impl fmt::Debug for SwapSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SwapSlot({})", self.0)
    }
}

/// A memory node in a disaggregated memory pool.
///
/// The paper's testbed has exactly one memory server; the fabric layer
/// generalizes it to a rack-scale pool where placement, replication and
/// failover are expressed in terms of node indices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from a raw pool index.
    pub const fn new(raw: u16) -> Self {
        NodeId(raw)
    }

    /// The raw pool index.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The pool index as a `usize`, for indexing node tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The node at position `index` of a pool's node table.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the 16-bit node-id space — a pool
    /// construction bug, not a runtime condition (debug builds only).
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u16::MAX as usize, "node index {index} > u16::MAX");
        NodeId(index as u16)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_stride_and_offset_roundtrip() {
        let a = Vpn::new(1000);
        for d in [-5i64, -1, 0, 1, 7, 100] {
            let b = a.offset(d).unwrap();
            assert_eq!(b.stride_from(a), d);
        }
    }

    #[test]
    fn vpn_offset_checks_bounds() {
        assert_eq!(Vpn::new(3).offset(-4), None);
        assert_eq!(Vpn::new(u64::MAX).offset(1), None);
        assert_eq!(Vpn::new(3).offset_saturating(-4), Vpn::new(0));
    }

    #[test]
    fn vpn_addr_containment() {
        let v = Vpn::containing(0x1234_5678);
        assert_eq!(v, Vpn::new(0x12345));
        assert!(v.base_addr() <= 0x1234_5678);
        assert!(0x1234_5678 < v.base_addr() + 4096);
    }

    #[test]
    fn line_addr_decomposes_into_ppn_and_line() {
        let p = Ppn::new(0xabcd);
        for line in [0u8, 1, 31, 63] {
            let la = p.line(line);
            assert_eq!(la.ppn(), p);
            assert_eq!(la.line_in_page(), line);
        }
    }

    #[test]
    fn ppn_base_addr_is_page_aligned() {
        let p = Ppn::new(42);
        assert_eq!(p.base_addr() % 4096, 0);
        assert_eq!(Ppn::containing(p.base_addr() + 4095), p);
    }

    #[test]
    fn swap_slot_offsets() {
        let s = SwapSlot::new(10);
        assert_eq!(s.offset(-10), Some(SwapSlot::new(0)));
        assert_eq!(s.offset(-11), None);
    }

    #[test]
    fn index_conversions_roundtrip() {
        assert_eq!(Ppn::from_index(42).index(), 42);
        assert_eq!(Vpn::from_index(42).index(), 42);
        assert_eq!(Vpn::from_index(42), Vpn::new(42));
        assert_eq!(Ppn::from_index(42), Ppn::new(42));
        assert_eq!(NodeId::from_index(7).index(), 7);
        assert_eq!(NodeId::from_index(7), NodeId::new(7));
        assert_eq!(Pid::from_index(3), Pid::new(3));
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert!(!format!("{:?}", Vpn::new(0)).is_empty());
        assert!(!format!("{:?}", Ppn::new(0)).is_empty());
        assert!(!format!("{:?}", Pid::new(0)).is_empty());
        assert!(!format!("{:?}", LineAddr::new(0)).is_empty());
        assert!(!format!("{:?}", SwapSlot::new(0)).is_empty());
    }
}
