//! Error type shared by the simulation crates.

use core::fmt;

use crate::{NodeId, Pid, Ppn, Vpn};

/// Errors surfaced by the HoPP simulation stack.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum Error {
    /// The machine has no free physical frame and reclaim found no victim.
    OutOfFrames,
    /// A translation was requested for a page the process never mapped.
    UnmappedPage {
        /// The faulting process.
        pid: Pid,
        /// The unmapped virtual page.
        vpn: Vpn,
    },
    /// A frame was expected to be owned but the frame table disagrees.
    FrameNotOwned {
        /// The frame in question.
        ppn: Ppn,
    },
    /// A process id was reused or never registered.
    UnknownProcess {
        /// The offending id.
        pid: Pid,
    },
    /// A configuration value is outside its documented domain.
    InvalidConfig {
        /// The parameter name.
        what: &'static str,
        /// Human-readable constraint violated.
        constraint: &'static str,
    },
    /// The remote memory node ran out of capacity.
    RemoteMemoryExhausted {
        /// The node's capacity in pages.
        capacity_pages: usize,
    },
    /// A swapped-out page's primary node and every replica are down:
    /// the data is gone and the run cannot honestly continue.
    PageUnreachable {
        /// The owning process.
        pid: Pid,
        /// The unreachable page.
        vpn: Vpn,
        /// The page's primary node.
        primary: NodeId,
        /// The replication factor the page was stored with.
        replication: usize,
    },
    /// No live memory node in the pool has room for a new placement.
    PoolExhausted {
        /// Pool size in nodes.
        nodes: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfFrames => write!(f, "no free physical frames and nothing to reclaim"),
            Error::UnmappedPage { pid, vpn } => {
                write!(f, "access to unmapped page {vpn} by {pid}")
            }
            Error::FrameNotOwned { ppn } => write!(f, "frame {ppn} is not owned"),
            Error::UnknownProcess { pid } => write!(f, "unknown process {pid}"),
            Error::InvalidConfig { what, constraint } => {
                write!(f, "invalid configuration: {what} must satisfy {constraint}")
            }
            Error::RemoteMemoryExhausted { capacity_pages } => {
                write!(f, "remote memory node full ({capacity_pages} pages)")
            }
            Error::PageUnreachable {
                pid,
                vpn,
                primary,
                replication,
            } => {
                write!(
                    f,
                    "page {pid}:{vpn} unreachable: primary {primary} and all {replication} \
                     replica(s) are down; raise --replication"
                )
            }
            Error::PoolExhausted { nodes } => {
                write!(
                    f,
                    "memory pool exhausted: no live node with room among {nodes} node(s); \
                     raise --mem-nodes or node capacity"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = core::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let msgs = [
            Error::OutOfFrames.to_string(),
            Error::UnmappedPage {
                pid: Pid::new(1),
                vpn: Vpn::new(2),
            }
            .to_string(),
            Error::FrameNotOwned { ppn: Ppn::new(3) }.to_string(),
            Error::UnknownProcess { pid: Pid::new(4) }.to_string(),
            Error::InvalidConfig {
                what: "n",
                constraint: "1..=64",
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase() || m.starts_with("no "));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
