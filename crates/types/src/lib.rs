#![warn(missing_docs)]
//! Common vocabulary types for the HoPP simulation stack.
//!
//! Every crate in this workspace speaks in terms of the newtypes defined
//! here: physical and virtual page numbers ([`Ppn`], [`Vpn`]), process
//! identifiers ([`Pid`]), physical cacheline addresses ([`LineAddr`]),
//! simulated time ([`Nanos`]) and the architectural constants of the
//! simulated machine (page and cacheline geometry).
//!
//! The newtypes exist to make unit confusion a compile error: a `Vpn`
//! can never be handed to a component that expects a `Ppn` (the paper's
//! reverse page table exists precisely because that translation is
//! non-trivial), and raw `u64` byte addresses cannot be mistaken for
//! page numbers.
//!
//! # Example
//!
//! ```
//! use hopp_types::{Vpn, Ppn, PAGE_SIZE, LINES_PER_PAGE};
//!
//! let vpn = Vpn::new(0x1234);
//! assert_eq!(vpn.base_addr(), 0x1234 * PAGE_SIZE as u64);
//! assert_eq!(LINES_PER_PAGE, 64);
//! let next = vpn.offset(1).unwrap();
//! assert_eq!(next.stride_from(vpn), 1);
//! # let _ = Ppn::new(7);
//! ```

pub mod access;
pub mod error;
pub mod ids;
pub mod rng;
pub mod time;

pub use access::{AccessKind, HotPage, LineAccess, PageAccess, PageFlags};
pub use error::{Error, Result};
pub use ids::{LineAddr, NodeId, Pid, Ppn, SwapSlot, Vpn};
pub use rng::SplitMix64;
pub use time::Nanos;

/// Size of a (small) page in bytes. The paper's kernel swap path and all
/// of HoPP's structures operate on 4 KB pages.
pub const PAGE_SIZE: usize = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Size of a cacheline in bytes.
pub const LINE_SIZE: usize = 64;
/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;
/// Number of cachelines in a 4 KB page (64). The HPD threshold `N` of the
/// paper ranges over `1..=LINES_PER_PAGE`.
pub const LINES_PER_PAGE: usize = PAGE_SIZE / LINE_SIZE;
/// Size of a 2 MB huge page in small pages.
pub const HUGE_PAGE_PAGES: usize = 512;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_are_consistent() {
        assert_eq!(1usize << PAGE_SHIFT, PAGE_SIZE);
        assert_eq!(1usize << LINE_SHIFT, LINE_SIZE);
        assert_eq!(LINES_PER_PAGE, 64);
        assert_eq!(HUGE_PAGE_PAGES * PAGE_SIZE, 2 * 1024 * 1024);
    }
}
