//! A small deterministic PRNG for workload generation and tests.
//!
//! The simulation must be byte-for-byte reproducible from a seed and
//! must build with zero external dependencies, so instead of `rand`
//! the workspace uses this SplitMix64 generator (Steele, Lea & Flood,
//! "Fast splittable pseudorandom number generators", OOPSLA 2014). It
//! passes BigCrush as a 64-bit mixer and is more than random enough
//! for access-pattern jitter, weighted interleaving and randomized
//! test inputs — none of which need cryptographic strength.

/// A deterministic SplitMix64 pseudorandom number generator.
///
/// # Example
///
/// ```
/// use hopp_types::rng::SplitMix64;
///
/// let mut a = SplitMix64::seed_from_u64(42);
/// let mut b = SplitMix64::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.gen_range(10..20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Equal seeds produce
    /// equal streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Consume one draw either way so gen_bool(0.0) and
            // gen_bool(eps) walk the stream identically.
            self.next_u64();
            return false;
        }
        self.next_f64() < p
    }

    /// A uniform draw from `[range.start, range.end)` via the
    /// multiply-shift reduction (bias < 2^-64, irrelevant here).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range over an empty range");
        let span = range.end - range.start;
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + hi
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..(i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn known_reference_values() {
        // Reference vector for seed 0 from the SplitMix64 definition;
        // guards against accidental constant or mixing changes.
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(10..20);
            assert!((10..20).contains(&x));
        }
        // A one-element range is always that element.
        assert_eq!(r.gen_range(5..6), 5);
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = SplitMix64::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        SplitMix64::seed_from_u64(0).gen_range(5..5);
    }

    #[test]
    fn gen_bool_edges_and_rate() {
        let mut r = SplitMix64::seed_from_u64(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn next_f64_is_half_open_unit() {
        let mut r = SplitMix64::seed_from_u64(6);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::seed_from_u64(8);
        let mut v: Vec<u64> = (0..64).collect();
        r.shuffle(&mut v);
        assert_ne!(v, (0..64).collect::<Vec<_>>(), "64 elements should move");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_of_tiny_slices_is_safe() {
        let mut r = SplitMix64::seed_from_u64(9);
        let mut empty: [u64; 0] = [];
        r.shuffle(&mut empty);
        let mut one = [1u64];
        r.shuffle(&mut one);
        assert_eq!(one, [1]);
    }
}
