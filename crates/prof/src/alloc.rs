//! A counting global allocator: delegates to the system allocator and
//! counts allocations per thread, so spans can attribute heap churn the
//! same way they attribute time.
//!
//! Install it from a binary (allocators are per-binary, not per-crate):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: hopp_prof::alloc::CountingAlloc = hopp_prof::alloc::CountingAlloc;
//! ```
//!
//! Without it [`thread_allocs`] stays at zero and every span reports
//! zero allocations — time attribution is unaffected.
//!
//! The `unsafe` below is the mandatory `GlobalAlloc` plumbing (same
//! shape as the counting allocator in `tests/alloc_steady.rs`); it
//! delegates verbatim to [`std::alloc::System`].
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Allocations performed by the current thread since it started (only
/// counted while [`CountingAlloc`] is installed as the global
/// allocator). Monotonic; spans diff it across their scope.
pub fn thread_allocs() -> u64 {
    // `try_with` so late allocations during thread teardown (after TLS
    // destruction) degrade to "not counted" instead of aborting.
    ALLOCS.try_with(Cell::get).unwrap_or(0)
}

fn bump() {
    let _ = ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
}

/// The counting allocator. Zero-sized; wraps [`System`].
pub struct CountingAlloc;

// SAFETY: delegates every method verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the count bump allocates nothing itself
// (`Cell<u64>` update, `try_with` absorbs TLS teardown).
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s layout contract;
    // forwarded unchanged to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller guarantees `ptr` came from this allocator with
    // this `layout`; `System` is the allocator that produced it.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same ptr/layout pair the caller vouched for.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller guarantees `ptr`/`layout` describe a live System
    // allocation and `new_size` is non-zero per the trait contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        // SAFETY: same ptr/layout/new_size the caller vouched for.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: caller upholds `GlobalAlloc::alloc_zeroed`'s layout
    // contract; forwarded unchanged to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc_zeroed(layout) }
    }
}
