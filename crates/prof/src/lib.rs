#![warn(missing_docs)]
//! `hopp-prof` — a hierarchical span-based self-profiler for the HoPP
//! stack.
//!
//! The simulator's determinism contract bans wall-clock time inside the
//! simulated clock domain, which also means the sim crates cannot tell
//! us where *host* time goes — and ROADMAP item 1 (the ≥10× event-driven
//! rewrite) needs exactly that attribution. This crate squares the
//! circle: sim-critical code may open **scope guards**
//! ([`span`]) that measure host time and allocation counts on entry and
//! exit, but a guard never hands a time value back to its caller, so
//! host time cannot leak into simulated state. The `hopp-check`
//! determinism rule encodes the same split: `hopp_prof::span` is
//! recognised in sim-critical crates while the raw clock accessor
//! [`host_now_ns`] stays banned there.
//!
//! # Model
//!
//! * State is **thread-local** (compatible with the hopp-lab worker
//!   pool: each worker profiles its own cell independently).
//! * [`enable`] arms the current thread; until [`disable`] every
//!   [`span`] pushes a frame keyed by `(parent, label)`, so identical
//!   labels under different parents are distinct tree nodes.
//! * When disabled — the default — [`span`] reads one thread-local
//!   flag and returns an inert guard: near-zero cost, no allocation.
//! * Labels are `&'static str` in `component/op` form
//!   (`"llc/loop"`, `"kernel/reclaim"`, …); paths join nested labels
//!   with `;` (the collapsed-stack convention).
//! * Allocation counts come from [`alloc::CountingAlloc`] when a binary
//!   installs it as `#[global_allocator]`; without it the counters are
//!   simply zero.
//!
//! # Artifacts
//!
//! [`ProfReport`] renders three ways: a self-time/total-time table
//! ([`ProfReport::to_json`]), a collapsed-stack file for flamegraph
//! tooling ([`ProfReport::to_folded`]), and a Chrome-trace fragment
//! ([`ProfReport::chrome_trace_fragment`]) that merges host spans onto
//! the simulated timeline as a second process (pid 2).
//!
//! ```
//! let ((), report) = hopp_prof::profile("kmeans", "hopp", "run", false, || {
//!     let _outer = hopp_prof::span("sim/run");
//!     {
//!         let _inner = hopp_prof::span("llc/loop");
//!     }
//! });
//! let run = report.node("sim/run").unwrap();
//! assert_eq!(run.count, 1);
//! assert!(run.total_ns >= run.self_ns);
//! ```

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::time::Instant;

pub mod alloc;

/// Cap on the retained span timeline (per enable); beyond it spans are
/// still *accumulated* but not retained as events.
const MAX_EVENTS: usize = 1 << 18;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<Option<State>> = const { RefCell::new(None) };
}

/// An open frame on the span stack.
struct Frame {
    node: usize,
    start_ns: u64,
    allocs_at: u64,
}

/// One accumulation node: a `(parent, label)` pair in the span tree.
struct Node {
    label: &'static str,
    parent: Option<usize>,
    children: Vec<usize>,
    count: u64,
    total_ns: u64,
    child_ns: u64,
    allocs: u64,
    child_allocs: u64,
}

struct State {
    epoch: Instant,
    nodes: Vec<Node>,
    roots: Vec<usize>,
    stack: Vec<Frame>,
    record_events: bool,
    events: Vec<SpanEvent>,
    dropped_events: u64,
    workload: String,
    system: String,
    phase: String,
}

impl State {
    fn new(record_events: bool) -> Self {
        State {
            epoch: Instant::now(),
            nodes: Vec::new(),
            roots: Vec::new(),
            stack: Vec::new(),
            record_events,
            events: Vec::new(),
            dropped_events: 0,
            workload: String::new(),
            system: String::new(),
            phase: String::new(),
        }
    }

    fn now_ns(&self) -> u64 {
        let d = self.epoch.elapsed();
        d.as_secs().saturating_mul(1_000_000_000) + u64::from(d.subsec_nanos())
    }

    fn enter(&mut self, label: &'static str) {
        let parent = self.stack.last().map(|f| f.node);
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        let node = match siblings
            .iter()
            .copied()
            .find(|&c| self.nodes[c].label == label)
        {
            Some(n) => n,
            None => {
                let n = self.nodes.len();
                self.nodes.push(Node {
                    label,
                    parent,
                    children: Vec::new(),
                    count: 0,
                    total_ns: 0,
                    child_ns: 0,
                    allocs: 0,
                    child_allocs: 0,
                });
                match parent {
                    Some(p) => self.nodes[p].children.push(n),
                    None => self.roots.push(n),
                }
                n
            }
        };
        self.stack.push(Frame {
            node,
            start_ns: self.now_ns(),
            allocs_at: alloc::thread_allocs(),
        });
    }

    fn exit(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let dur = self.now_ns().saturating_sub(frame.start_ns);
        let allocs = alloc::thread_allocs().saturating_sub(frame.allocs_at);
        let node = &mut self.nodes[frame.node];
        node.count += 1;
        node.total_ns += dur;
        node.allocs += allocs;
        let label = node.label;
        if let Some(parent) = self.stack.last() {
            let p = &mut self.nodes[parent.node];
            p.child_ns += dur;
            p.child_allocs += allocs;
        }
        if self.record_events {
            if self.events.len() < MAX_EVENTS {
                self.events.push(SpanEvent {
                    label,
                    depth: self.stack.len() as u32,
                    start_ns: frame.start_ns,
                    dur_ns: dur,
                });
            } else {
                self.dropped_events += 1;
            }
        }
    }

    fn into_report(mut self) -> ProfReport {
        let enabled_ns = self.now_ns();
        // Close anything still open so no time is silently dropped.
        while !self.stack.is_empty() {
            self.exit();
        }
        // DFS from the roots so a parent always precedes its children
        // and sibling order is first-open order (deterministic).
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut todo: Vec<usize> = self.roots.iter().rev().copied().collect();
        while let Some(n) = todo.pop() {
            remap[n] = order.len();
            order.push(n);
            todo.extend(self.nodes[n].children.iter().rev().copied());
        }
        let nodes = order
            .iter()
            .map(|&n| {
                let node = &self.nodes[n];
                ProfNode {
                    label: node.label,
                    parent: node.parent.map(|p| remap[p]),
                    count: node.count,
                    total_ns: node.total_ns,
                    self_ns: node.total_ns.saturating_sub(node.child_ns),
                    allocs: node.allocs,
                    self_allocs: node.allocs.saturating_sub(node.child_allocs),
                }
            })
            .collect();
        ProfReport {
            workload: self.workload,
            system: self.system,
            phase: self.phase,
            enabled_ns,
            nodes,
            events: self.events,
            dropped_events: self.dropped_events,
        }
    }
}

/// A scope guard returned by [`span`]. Closing the scope (dropping the
/// guard) charges the elapsed host time and allocations to the span's
/// node. The guard exposes no accessors on purpose: sim code can
/// *bound* a measurement but never *read* it.
#[must_use = "a span guard measures the scope it lives in; dropping it immediately measures nothing"]
pub struct Span {
    armed: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            STATE.with(|s| {
                if let Some(state) = s.borrow_mut().as_mut() {
                    state.exit();
                }
            });
        }
    }
}

/// Opens a profiling span for the current scope.
///
/// When profiling is disabled (the default) this reads one thread-local
/// flag and returns an inert guard. Labels should be `&'static str` in
/// `component/op` form, e.g. `"hw/rpt_walk"`.
#[inline]
pub fn span(label: &'static str) -> Span {
    if !ENABLED.with(Cell::get) {
        return Span { armed: false };
    }
    STATE.with(|s| {
        if let Some(state) = s.borrow_mut().as_mut() {
            state.enter(label);
        }
    });
    Span { armed: true }
}

/// Arms the profiler on the current thread, discarding any previous
/// state. With `record_events` the span timeline is retained (up to an
/// internal cap) for Chrome-trace export; without it only the
/// accumulator tree is kept.
pub fn enable(record_events: bool) {
    STATE.with(|s| *s.borrow_mut() = Some(State::new(record_events)));
    ENABLED.with(|e| e.set(true));
}

/// Tags the current thread's profile with the scenario that produced
/// it. The key is carried into [`ProfReport`] and its JSON export.
pub fn set_key(workload: &str, system: &str, phase: &str) {
    STATE.with(|s| {
        if let Some(state) = s.borrow_mut().as_mut() {
            state.workload = workload.to_string();
            state.system = system.to_string();
            state.phase = phase.to_string();
        }
    });
}

/// True when [`enable`] is active on the current thread.
pub fn is_enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Disarms the profiler on the current thread and returns the collected
/// profile, or `None` when it was never enabled. Spans still open are
/// closed at the current instant.
pub fn disable() -> Option<ProfReport> {
    ENABLED.with(|e| e.set(false));
    STATE
        .with(|s| s.borrow_mut().take())
        .map(State::into_report)
}

/// Profiles a closure under the given workload × system × phase key:
/// [`enable`] → run → [`disable`], returning the closure's value and
/// the profile.
pub fn profile<T>(
    workload: &str,
    system: &str,
    phase: &str,
    record_events: bool,
    f: impl FnOnce() -> T,
) -> (T, ProfReport) {
    enable(record_events);
    set_key(workload, system, phase);
    let value = f();
    let report = disable().unwrap_or_default();
    (value, report)
}

/// Raw host-clock readout in nanoseconds (monotonic, from an arbitrary
/// process-wide epoch).
///
/// **Harness code only.** The `hopp-check` determinism rule bans this
/// accessor in sim-critical crates: sim code profiles through [`span`]
/// scope guards, which never return the measured time.
pub fn host_now_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let d = EPOCH.get_or_init(Instant::now).elapsed();
    d.as_secs().saturating_mul(1_000_000_000) + u64::from(d.subsec_nanos())
}

/// One node of the exported span tree.
#[derive(Clone, Debug)]
pub struct ProfNode {
    /// The span label (`component/op`).
    pub label: &'static str,
    /// Index of the parent node in [`ProfReport::nodes`], if any.
    pub parent: Option<usize>,
    /// Times the span was entered.
    pub count: u64,
    /// Host nanoseconds inside the span, children included.
    pub total_ns: u64,
    /// Host nanoseconds inside the span, children excluded.
    pub self_ns: u64,
    /// Heap allocations inside the span, children included (zero unless
    /// the binary installs [`alloc::CountingAlloc`]).
    pub allocs: u64,
    /// Heap allocations inside the span, children excluded.
    pub self_allocs: u64,
}

/// One retained span occurrence (for Chrome-trace export).
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// The span label.
    pub label: &'static str,
    /// Nesting depth at entry (0 = root).
    pub depth: u32,
    /// Host nanoseconds since [`enable`].
    pub start_ns: u64,
    /// Span duration in host nanoseconds.
    pub dur_ns: u64,
}

/// The profile of one [`enable`]/[`disable`] window on one thread.
#[derive(Clone, Debug, Default)]
pub struct ProfReport {
    /// Workload the profiled run executed (from [`set_key`]).
    pub workload: String,
    /// System under test (from [`set_key`]).
    pub system: String,
    /// Phase of the harness (from [`set_key`]).
    pub phase: String,
    /// Host nanoseconds between [`enable`] and [`disable`].
    pub enabled_ns: u64,
    /// The span tree in depth-first order (parents precede children).
    pub nodes: Vec<ProfNode>,
    /// Retained span timeline (empty unless events were recorded).
    pub events: Vec<SpanEvent>,
    /// Spans not retained because the timeline cap was hit.
    pub dropped_events: u64,
}

impl ProfReport {
    /// The `;`-joined label path of node `idx` (collapsed-stack form).
    pub fn path(&self, idx: usize) -> String {
        let mut labels = Vec::new();
        let mut cur = Some(idx);
        while let Some(i) = cur {
            match self.nodes.get(i) {
                Some(n) => {
                    labels.push(n.label);
                    cur = n.parent;
                }
                None => break,
            }
        }
        labels.reverse();
        labels.join(";")
    }

    /// Looks a node up by its `;`-joined path.
    pub fn node(&self, path: &str) -> Option<&ProfNode> {
        (0..self.nodes.len())
            .find(|&i| self.path(i) == path)
            .map(|i| &self.nodes[i])
    }

    /// Host nanoseconds attributed to root spans (the coverage
    /// numerator: `attributed_ns / enabled_ns` is how much of the
    /// profiled window the spans explain).
    pub fn attributed_ns(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.parent.is_none())
            .map(|n| n.total_ns)
            .sum()
    }

    /// Renders the self-time/total-time table as JSON
    /// (`hopp-prof/v1`). Key order and number formats are fixed, so
    /// output shape is stable; the values are host measurements and
    /// differ run to run.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"hopp-prof/v1\",\n");
        let _ = writeln!(
            out,
            "  \"key\": {{\"workload\": \"{}\", \"system\": \"{}\", \"phase\": \"{}\"}},",
            self.workload, self.system, self.phase
        );
        let _ = writeln!(out, "  \"enabled_ns\": {},", self.enabled_ns);
        let _ = writeln!(out, "  \"attributed_ns\": {},", self.attributed_ns());
        let _ = writeln!(out, "  \"dropped_events\": {},", self.dropped_events);
        out.push_str("  \"spans\": [\n");
        let pct = |ns: u64| {
            if self.enabled_ns == 0 {
                0.0
            } else {
                ns as f64 * 100.0 / self.enabled_ns as f64
            }
        };
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"path\": \"{}\", \"count\": {}, \"total_ns\": {}, \"self_ns\": {}, \
                 \"total_pct\": {:.2}, \"self_pct\": {:.2}, \"allocs\": {}, \"self_allocs\": {}}}",
                self.path(i),
                n.count,
                n.total_ns,
                n.self_ns,
                pct(n.total_ns),
                pct(n.self_ns),
                n.allocs,
                n.self_allocs,
            );
            out.push_str(if i + 1 == self.nodes.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the profile as a collapsed-stack file: one
    /// `path;to;span self_ns` line per node, sorted by path, directly
    /// consumable by `flamegraph.pl` / `inferno-flamegraph`
    /// (self-nanoseconds as the sample count).
    pub fn to_folded(&self) -> String {
        let mut lines: Vec<String> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].self_ns > 0)
            .map(|i| format!("{} {}", self.path(i), self.nodes[i].self_ns))
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Renders the retained span timeline as a Chrome trace-event
    /// fragment: a comma-separated run of event objects (no enclosing
    /// brackets) on pid 2 ("host"), ready to splice into the simulator's
    /// trace via `hopp_obs::events_to_chrome_trace_with_extra`.
    ///
    /// Host time and simulated time share nothing but the file; the two
    /// processes simply sit side by side in the viewer.
    pub fn chrome_trace_fragment(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 256);
        out.push_str(
            "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\",\
             \"args\":{\"name\":\"host\"}},\
             {\"ph\":\"M\",\"pid\":2,\"tid\":1,\"name\":\"thread_name\",\
             \"args\":{\"name\":\"prof\"}}",
        );
        let mut slices: Vec<&SpanEvent> = self.events.iter().collect();
        slices.sort_by_key(|e| (e.start_ns, e.depth, std::cmp::Reverse(e.dur_ns)));
        for e in slices {
            let _ = write!(
                out,
                ",{{\"name\":\"{}\",\"pid\":2,\"tid\":1,\"ts\":{}.{:03},\"ph\":\"X\",\
                 \"dur\":{}.{:03},\"args\":{{\"host_ns\":{}}}}}",
                e.label,
                e.start_ns / 1_000,
                e.start_ns % 1_000,
                e.dur_ns / 1_000,
                e.dur_ns % 1_000,
                e.start_ns,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(ns: u64) {
        let until = host_now_ns() + ns;
        while host_now_ns() < until {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn disabled_spans_are_inert() {
        assert!(!is_enabled());
        let g = span("sim/run");
        drop(g);
        assert!(disable().is_none());
    }

    #[test]
    fn nesting_builds_a_tree_with_self_and_total_time() {
        enable(false);
        set_key("kmeans", "hopp", "run");
        {
            let _run = span("sim/run");
            spin(40_000);
            for _ in 0..3 {
                let _step = span("sim/step");
                spin(20_000);
                let _llc = span("llc/loop");
                spin(10_000);
            }
        }
        let r = disable().expect("was enabled");
        assert_eq!(r.workload, "kmeans");
        assert_eq!(r.system, "hopp");
        assert_eq!(r.phase, "run");
        let run = r.node("sim/run").expect("root exists");
        let step = r.node("sim/run;sim/step").expect("child exists");
        let llc = r.node("sim/run;sim/step;llc/loop").expect("leaf exists");
        assert_eq!(run.count, 1);
        assert_eq!(step.count, 3);
        assert_eq!(llc.count, 3);
        assert!(run.total_ns >= step.total_ns);
        assert!(step.total_ns >= llc.total_ns);
        assert!(step.self_ns >= 3 * 20_000, "step self time excludes llc");
        assert_eq!(run.self_ns, run.total_ns - step.total_ns);
        assert!(r.enabled_ns >= run.total_ns);
        assert!(r.attributed_ns() == run.total_ns);
    }

    #[test]
    fn same_label_under_different_parents_is_two_nodes() {
        enable(false);
        {
            let _a = span("kernel/major");
            let _l = span("fabric/link");
        }
        {
            let _b = span("kernel/readahead");
            let _l = span("fabric/link");
        }
        let r = disable().expect("was enabled");
        assert!(r.node("kernel/major;fabric/link").is_some());
        assert!(r.node("kernel/readahead;fabric/link").is_some());
        assert_eq!(r.nodes.len(), 4);
    }

    #[test]
    fn folded_output_is_sorted_paths_with_self_ns() {
        enable(false);
        {
            let _a = span("sim/run");
            spin(5_000);
            let _b = span("llc/loop");
            spin(5_000);
        }
        let r = disable().expect("was enabled");
        let folded = r.to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("sim/run "));
        assert!(lines[1].starts_with("sim/run;llc/loop "));
        for line in lines {
            let (_, v) = line.rsplit_once(' ').expect("space-separated");
            assert!(v.parse::<u64>().expect("numeric self_ns") > 0);
        }
    }

    #[test]
    fn json_has_schema_key_and_one_span_object_per_node() {
        let ((), r) = profile("quicksort", "fastswap", "run", false, || {
            let _a = span("sim/run");
        });
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"hopp-prof/v1\""));
        assert!(json.contains(
            "\"key\": {\"workload\": \"quicksort\", \"system\": \"fastswap\", \"phase\": \"run\"}"
        ));
        assert!(json.contains("\"path\": \"sim/run\""));
        assert_eq!(json.matches("\"path\": ").count(), r.nodes.len());
    }

    #[test]
    fn events_are_retained_only_when_asked() {
        enable(false);
        {
            let _a = span("sim/run");
        }
        assert!(disable().expect("enabled").events.is_empty());

        enable(true);
        {
            let _a = span("sim/run");
            let _b = span("llc/loop");
        }
        let r = disable().expect("enabled");
        assert_eq!(r.events.len(), 2);
        // Children close first but the fragment re-sorts by start.
        let frag = r.chrome_trace_fragment();
        assert!(frag.starts_with("{\"ph\":\"M\",\"pid\":2,"));
        let run = frag.find("\"name\":\"sim/run\"").expect("run slice");
        let llc = frag.find("\"name\":\"llc/loop\"").expect("llc slice");
        assert!(run < llc, "parent slice precedes child in the fragment");
    }

    #[test]
    fn open_spans_are_closed_by_disable() {
        enable(false);
        let g = span("sim/run");
        let r = disable().expect("enabled");
        assert_eq!(r.node("sim/run").expect("closed at disable").count, 1);
        drop(g); // inert: state is gone, must not panic or corrupt
        assert!(disable().is_none());
    }
}
